#include "ht/table_builder.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/random.h"

namespace simdht {

namespace {

// Number of distinct non-zero keys in K's domain.
template <typename K>
std::uint64_t KeySpace() {
  if constexpr (sizeof(K) == 8) {
    return std::numeric_limits<std::uint64_t>::max();
  } else {
    return (std::uint64_t{1} << (sizeof(K) * 8)) - 1;
  }
}

template <typename K>
K RandomNonZeroKey(Xoshiro256* rng) {
  for (;;) {
    const auto k = static_cast<K>(rng->Next());
    if (k != static_cast<K>(kEmptyKey)) return k;
  }
}

}  // namespace

template <typename K>
std::vector<K> UniqueRandomKeys(std::size_t count, std::uint64_t seed,
                                const std::vector<K>* exclude) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(count + (exclude != nullptr ? exclude->size() : 0));
  if (exclude != nullptr) {
    for (K k : *exclude) seen.insert(static_cast<std::uint64_t>(k));
  }
  const std::uint64_t space = KeySpace<K>();
  const std::uint64_t available =
      space > seen.size() ? space - seen.size() : 0;
  count = static_cast<std::size_t>(
      std::min<std::uint64_t>(count, available));

  std::vector<K> keys;
  keys.reserve(count);
  Xoshiro256 rng(seed);

  // For narrow key domains, rejection sampling degrades as the domain fills
  // up; enumerate-and-shuffle instead.
  if (space <= (1u << 16) && count * 2 >= available) {
    std::vector<K> pool;
    pool.reserve(available);
    for (std::uint64_t v = 1; v <= space; ++v) {
      if (!seen.count(v)) pool.push_back(static_cast<K>(v));
    }
    for (std::size_t i = pool.size(); i > 1; --i) {
      std::swap(pool[i - 1], pool[rng.NextBounded(i)]);
    }
    pool.resize(count);
    return pool;
  }

  while (keys.size() < count) {
    const K k = RandomNonZeroKey<K>(&rng);
    if (seen.insert(static_cast<std::uint64_t>(k)).second) {
      keys.push_back(k);
    }
  }
  return keys;
}

template <typename K, typename V>
BuildResult<K> FillToLoadFactor(CuckooTable<K, V>* table, double target_lf,
                                std::uint64_t seed) {
  BuildResult<K> result;
  const auto target =
      static_cast<std::uint64_t>(target_lf *
                                 static_cast<double>(table->capacity()));
  result.inserted_keys = UniqueRandomKeys<K>(target, seed);
  std::vector<K> landed;
  landed.reserve(result.inserted_keys.size());
  for (K k : result.inserted_keys) {
    if (!table->Insert(k, DeriveVal<K, V>(k))) {
      result.hit_capacity = true;
      break;
    }
    landed.push_back(k);
  }
  result.inserted_keys = std::move(landed);
  result.achieved_load_factor = table->load_factor();
  return result;
}

template <typename K, typename V>
BuildResult<K> FillToLoadFactor(ShardedTable<K, V>* table, double target_lf,
                                std::uint64_t seed) {
  BuildResult<K> result;
  const auto target =
      static_cast<std::uint64_t>(target_lf *
                                 static_cast<double>(table->capacity()));
  result.inserted_keys = UniqueRandomKeys<K>(target, seed);
  std::vector<K> landed;
  landed.reserve(result.inserted_keys.size());
  for (K k : result.inserted_keys) {
    if (!table->Insert(k, DeriveVal<K, V>(k))) {
      result.hit_capacity = true;
      break;
    }
    landed.push_back(k);
  }
  result.inserted_keys = std::move(landed);
  result.achieved_load_factor = table->load_factor();
  return result;
}

template <typename K, typename V>
double MeasureMaxLoadFactor(unsigned ways, unsigned slots,
                            std::uint64_t num_buckets, BucketLayout layout,
                            std::uint64_t seed) {
  CuckooTable<K, V> table(ways, slots, num_buckets, layout, seed);
  // Ask for 100% occupancy; the insert that fails defines the max LF.
  FillToLoadFactor(&table, 1.0, seed);
  return table.load_factor();
}

template std::vector<std::uint16_t> UniqueRandomKeys<std::uint16_t>(
    std::size_t, std::uint64_t, const std::vector<std::uint16_t>*);
template std::vector<std::uint32_t> UniqueRandomKeys<std::uint32_t>(
    std::size_t, std::uint64_t, const std::vector<std::uint32_t>*);
template std::vector<std::uint64_t> UniqueRandomKeys<std::uint64_t>(
    std::size_t, std::uint64_t, const std::vector<std::uint64_t>*);

template BuildResult<std::uint16_t> FillToLoadFactor(
    CuckooTable<std::uint16_t, std::uint32_t>*, double, std::uint64_t);
template BuildResult<std::uint32_t> FillToLoadFactor(
    CuckooTable<std::uint32_t, std::uint32_t>*, double, std::uint64_t);
template BuildResult<std::uint64_t> FillToLoadFactor(
    CuckooTable<std::uint64_t, std::uint64_t>*, double, std::uint64_t);

template BuildResult<std::uint16_t> FillToLoadFactor(
    ShardedTable<std::uint16_t, std::uint32_t>*, double, std::uint64_t);
template BuildResult<std::uint32_t> FillToLoadFactor(
    ShardedTable<std::uint32_t, std::uint32_t>*, double, std::uint64_t);
template BuildResult<std::uint64_t> FillToLoadFactor(
    ShardedTable<std::uint64_t, std::uint64_t>*, double, std::uint64_t);

template double MeasureMaxLoadFactor<std::uint32_t, std::uint32_t>(
    unsigned, unsigned, std::uint64_t, BucketLayout, std::uint64_t);
template double MeasureMaxLoadFactor<std::uint64_t, std::uint64_t>(
    unsigned, unsigned, std::uint64_t, BucketLayout, std::uint64_t);

}  // namespace simdht
