#include "ht/cuckoo_table.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "hash/block_hash.h"

namespace simdht {

namespace {

template <typename K, typename V>
LayoutSpec SpecFor(unsigned ways, unsigned slots, BucketLayout layout) {
  LayoutSpec spec;
  spec.ways = ways;
  spec.slots = slots;
  spec.key_bits = sizeof(K) * 8;
  spec.val_bits = sizeof(V) * 8;
  spec.bucket_layout = layout;
  return spec;
}

// Graph adapter over a full-key TableStore for the shared BFS engine: roots
// are the new key's candidate buckets, edges lead from an occupant to the
// buckets it could be displaced into.
template <typename K>
struct CuckooPathGraph {
  const TableStore* store;
  K key;

  unsigned roots() const { return store->spec().ways; }
  std::uint64_t root(unsigned w) const {
    return store->Bucket<K>(w, key);
  }
  unsigned slots() const { return store->spec().slots; }
  bool empty_slot(std::uint64_t b, unsigned s) const {
    return store->KeyAt<K>(b, s) == static_cast<K>(kEmptyKey);
  }
  unsigned alts(std::uint64_t b, unsigned s, std::uint64_t* out) const {
    const K occupant = store->KeyAt<K>(b, s);
    if (occupant == static_cast<K>(kEmptyKey)) return 0;
    unsigned n = 0;
    for (unsigned w = 0; w < store->spec().ways; ++w) {
      const std::uint64_t alt = store->Bucket<K>(w, occupant);
      if (alt != b) out[n++] = alt;
    }
    return n;
  }
};

}  // namespace

const char* InsertPolicyName(InsertPolicy policy) {
  switch (policy) {
    case InsertPolicy::kBfs: return "bfs";
    case InsertPolicy::kRandomWalk: return "walk";
  }
  return "?";
}

template <typename K, typename V>
CuckooTable<K, V>::CuckooTable(unsigned ways, unsigned slots,
                               std::uint64_t num_buckets, BucketLayout layout,
                               std::uint64_t seed)
    : store_(TableShape::For(SpecFor<K, V>(ways, slots, layout), num_buckets),
             seed),
      walk_rng_(seed ^ 0xA5A5A5A55A5A5A5AULL) {}

template <typename K, typename V>
bool CuckooTable<K, V>::Find(K key, V* val) const {
  if (key == static_cast<K>(kEmptyKey)) return false;
  const LayoutSpec& spec = store_.spec();
  for (unsigned way = 0; way < spec.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (KeyAt(b, s) == key) {
        if (val != nullptr) *val = ValAt(b, s);
        return true;
      }
    }
  }
  const unsigned stash_n = store_.stash_count();
  for (unsigned i = 0; i < stash_n; ++i) {
    const StashEntry e = store_.stash_at(i);
    if (e.key == static_cast<std::uint64_t>(key)) {
      if (val != nullptr) *val = static_cast<V>(e.val);
      return true;
    }
  }
  return false;
}

template <typename K, typename V>
bool CuckooTable<K, V>::FindInsertionPath(K key,
                                          std::vector<PathStep>* path) {
  CuckooPathGraph<K> graph{&store_, key};
  PathSearchLimits limits;
  limits.max_nodes = kMaxBfsNodes;
  limits.max_depth = kMaxBfsDepth;
  return FindEvictionPath(graph, limits, &scratch_, path);
}

template <typename K, typename V>
bool CuckooTable<K, V>::InsertBfs(K key, V val) {
  if (!FindInsertionPath(key, &path_)) return false;
  // Apply the chain from the tail: each occupant is written to its
  // destination before its own slot is overwritten by the entry below it,
  // so a partial application never loses an entry. (Single-writer tables
  // need no intermediate clears — every source slot is itself a
  // destination of the next move, or of the new key.)
  for (std::size_t i = path_.size() - 1; i > 0; --i) {
    const PathStep& src = path_[i - 1];
    const PathStep& dst = path_[i];
    store_.SetSlot(dst.bucket, dst.slot, KeyAt(src.bucket, src.slot),
                   ValAt(src.bucket, src.slot));
  }
  store_.SetSlot(path_.front().bucket, path_.front().slot, key, val);
  store_.AdjustSize(1);
  if (path_.size() == 1) {
    ++stats_.direct_inserts;
  } else {
    ++stats_.path_inserts;
    stats_.path_moves += path_.size() - 1;
  }
  return true;
}

template <typename K, typename V>
bool CuckooTable<K, V>::InsertRandomWalk(K key, V val) {
  const LayoutSpec& spec = store_.spec();

  // Random-walk eviction: place into any empty candidate slot; otherwise
  // kick a random occupant to one of *its* alternate buckets and repeat.
  // Every displacement is recorded so a failed walk can be unwound — a
  // failed walk leaves the table exactly as it was.
  struct Step {
    std::uint32_t bucket;
    unsigned slot;
  };
  std::vector<Step> path;
  path.reserve(64);

  K cur_key = key;
  V cur_val = val;
  for (unsigned kick = 0; kick < kMaxKicks; ++kick) {
    for (unsigned way = 0; way < spec.ways; ++way) {
      const std::uint32_t b = BucketOf(way, cur_key);
      for (unsigned s = 0; s < spec.slots; ++s) {
        if (KeyAt(b, s) == static_cast<K>(kEmptyKey)) {
          store_.SetSlot(b, s, cur_key, cur_val);
          store_.AdjustSize(1);
          if (path.empty()) {
            ++stats_.direct_inserts;
          } else {
            ++stats_.path_inserts;
          }
          return true;
        }
      }
    }
    const auto victim_way =
        static_cast<unsigned>(walk_rng_.NextBounded(spec.ways));
    const auto victim_slot =
        static_cast<unsigned>(walk_rng_.NextBounded(spec.slots));
    const std::uint32_t b = BucketOf(victim_way, cur_key);
    const K evicted_key = KeyAt(b, victim_slot);
    const V evicted_val = ValAt(b, victim_slot);
    store_.SetSlot(b, victim_slot, cur_key, cur_val);
    path.push_back({b, victim_slot});
    ++stats_.walk_kicks;
    cur_key = evicted_key;
    cur_val = evicted_val;
  }

  // Walk exhausted: unwind the displacements in reverse so every previously
  // stored entry is back in its original slot and `key` is not inserted.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const K displaced_key = KeyAt(it->bucket, it->slot);
    const V displaced_val = ValAt(it->bucket, it->slot);
    store_.SetSlot(it->bucket, it->slot, cur_key, cur_val);
    cur_key = displaced_key;
    cur_val = displaced_val;
  }
  // After unwinding the carried entry is the original key/val again.
  return false;
}

template <typename K, typename V>
std::optional<CuckooTable<K, V>> CuckooTable<K, V>::BuildRecoveryTable(
    K key, V val) {
  if (!rebuild_enabled_) return std::nullopt;
  // A rebuild that failed at this occupancy fails again — the attempt is
  // O(n); only retry once entries have been erased.
  if (size() >= rebuild_blocked_size_) return std::nullopt;

  const LayoutSpec& spec = store_.spec();
  std::vector<std::pair<K, V>> entries;
  entries.reserve(static_cast<std::size_t>(size()) + 1);
  for (std::uint64_t b = 0; b < store_.num_buckets(); ++b) {
    for (unsigned s = 0; s < spec.slots; ++s) {
      const K k = KeyAt(b, s);
      if (k != static_cast<K>(kEmptyKey)) entries.push_back({k, ValAt(b, s)});
    }
  }
  const unsigned stash_n = store_.stash_count();
  for (unsigned i = 0; i < stash_n; ++i) {
    const StashEntry e = store_.stash_at(i);
    entries.push_back({static_cast<K>(e.key), static_cast<V>(e.val)});
  }
  entries.push_back({key, val});

  for (unsigned attempt = 1; attempt <= kMaxRebuildAttempts; ++attempt) {
    std::uint64_t seed =
        Mix64(store_.seed() + 0x9E3779B97F4A7C15ULL * attempt);
    if (seed == 0) seed = attempt;  // seed 0 means "default multipliers"
    CuckooTable<K, V> staging(spec.ways, spec.slots, store_.num_buckets(),
                              spec.bucket_layout, seed);
    staging.store_.set_stash_capacity(store_.stash_capacity());
    staging.rebuild_enabled_ = false;  // no recursive recovery
    bool ok = true;
    for (const auto& [k, v] : entries) {
      if (!staging.Insert(k, v)) {
        ok = false;
        break;
      }
    }
    if (ok) return staging;
  }
  rebuild_blocked_size_ = size();
  return std::nullopt;
}

template <typename K, typename V>
void CuckooTable<K, V>::AdoptRebuilt(const CuckooTable<K, V>& staging) {
  store_.AdoptArena(staging.store_.data());
  store_.Reseed(staging.store_.seed());
  store_.SetSize(staging.size());
  store_.StashClear();
  const unsigned stash_n = staging.store_.stash_count();
  for (unsigned i = 0; i < stash_n; ++i) {
    const StashEntry e = staging.store_.stash_at(i);
    store_.StashAppend(e.key, e.val);
  }
  ++stats_.rebuilds;
}

template <typename K, typename V>
bool CuckooTable<K, V>::TryRebuild(K key, V val) {
  std::optional<CuckooTable<K, V>> staging = BuildRecoveryTable(key, val);
  if (!staging) return false;
  AdoptRebuilt(*staging);
  return true;
}

template <typename K, typename V>
bool CuckooTable<K, V>::Insert(K key, V val) {
  // Key 0 is the empty-slot sentinel: storing it would silently corrupt
  // occupancy accounting (and Erase(0) would "free" an empty slot), so it
  // is rejected in every build mode — not just under assert.
  if (key == static_cast<K>(kEmptyKey)) return false;
  const LayoutSpec& spec = store_.spec();

  // Overwrite if present (cuckoo invariant: at most one copy of a key).
  for (unsigned way = 0; way < spec.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (KeyAt(b, s) == key) {
        store_.SetSlot(b, s, key, val);
        return true;
      }
    }
  }
  const unsigned stash_n = store_.stash_count();
  for (unsigned i = 0; i < stash_n; ++i) {
    if (store_.stash_at(i).key == static_cast<std::uint64_t>(key)) {
      store_.StashSetVal(i, static_cast<std::uint64_t>(val));
      return true;
    }
  }

  const bool placed = insert_policy_ == InsertPolicy::kRandomWalk
                          ? InsertRandomWalk(key, val)
                          : InsertBfs(key, val);
  if (placed) return true;

  // No eviction path: spill to the overflow stash.
  if (store_.StashAppend(static_cast<std::uint64_t>(key),
                         static_cast<std::uint64_t>(val))) {
    store_.AdjustSize(1);
    ++stats_.stash_inserts;
    return true;
  }

  // Stash full too: last resort, rebuild everything under a fresh seed.
  if (TryRebuild(key, val)) return true;

  ++stats_.failed_inserts;
  return false;
}

template <typename K, typename V>
void CuckooTable<K, V>::BatchInsert(const MutationBatch<K, V>& batch) {
  const MutationKernel* kernel =
      MutationRegistry::Get().ForCuckoo(store_.spec());
  const unsigned ways = store_.spec().ways;
  std::uint32_t buckets[kMutationChunk * kMaxWays];
  for (std::size_t base = 0; base < batch.size; base += kMutationChunk) {
    const std::size_t n = std::min(kMutationChunk, batch.size - base);
    const K* keys = batch.keys + base;
    const V* vals = batch.vals + base;
    std::uint64_t chunk_seed = store_.seed();
    TableView view = store_.view();
    BlockBuckets<K>(store_.hash(), ways, keys, n, buckets);
    for (std::size_t i = 0; i < n; ++i) {
      for (unsigned w = 0; w < ways; ++w) {
        PrefetchBucketForWrite(view, buckets[i * ways + w]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const K key = keys[i];
      std::uint8_t r = 1;
      bool done = false;
      if (key == static_cast<K>(kEmptyKey)) {
        r = 0;
        done = true;
      }
      // A scalar-core fallback can reseed (rebuild recovery); the rest of
      // the chunk's block-hashed candidates are then stale. Seed-gate and
      // re-hash the unprocessed tail.
      if (!done && store_.seed() != chunk_seed) {
        chunk_seed = store_.seed();
        view = store_.view();
        BlockBuckets<K>(store_.hash(), ways, keys + i, n - i,
                        buckets + i * ways);
      }
      if (!done) {
        const auto key_w = static_cast<std::uint64_t>(key);
        int place_way = -1;
        int place_slot = -1;
        for (unsigned w = 0; w < ways; ++w) {
          const std::uint32_t b = buckets[i * ways + w];
          const BucketScan scan = kernel->bucket_scan(view, b, key_w);
          if (scan.match_slot >= 0) {
            // Duplicate: overwrite in place (cuckoo invariant — at most
            // one copy), exactly where the scalar dup pass would.
            store_.SetSlot(b, static_cast<unsigned>(scan.match_slot), key,
                           vals[i]);
            done = true;
            break;
          }
          if (place_way < 0 && scan.empty_slot >= 0) {
            place_way = static_cast<int>(w);
            place_slot = scan.empty_slot;
          }
        }
        if (!done) {
          const unsigned stash_n = store_.stash_count();
          for (unsigned j = 0; j < stash_n; ++j) {
            if (store_.stash_at(j).key == key_w) {
              store_.StashSetVal(j, static_cast<std::uint64_t>(vals[i]));
              done = true;
              break;
            }
          }
        }
        if (!done && place_way >= 0) {
          // Direct insert: the first way with an empty slot, lowest slot —
          // the placement both the BFS root scan (path length one) and the
          // random walk's first iteration produce, with no RNG consumed.
          store_.SetSlot(buckets[i * ways + place_way],
                         static_cast<unsigned>(place_slot), key, vals[i]);
          store_.AdjustSize(1);
          ++stats_.direct_inserts;
          done = true;
        }
        if (!done) {
          // Conflict tail: every candidate bucket is full. Run the scalar
          // core (eviction path / stash spill / rebuild recovery).
          r = Insert(key, vals[i]) ? 1 : 0;
        }
      }
      if (batch.ok != nullptr) batch.ok[base + i] = r;
    }
  }
}

template <typename K, typename V>
void CuckooTable<K, V>::BatchUpdate(const MutationBatch<K, V>& batch) {
  const MutationKernel* kernel =
      MutationRegistry::Get().ForCuckoo(store_.spec());
  const unsigned ways = store_.spec().ways;
  std::uint32_t buckets[kMutationChunk * kMaxWays];
  for (std::size_t base = 0; base < batch.size; base += kMutationChunk) {
    const std::size_t n = std::min(kMutationChunk, batch.size - base);
    const K* keys = batch.keys + base;
    const V* vals = batch.vals + base;
    const TableView view = store_.view();
    BlockBuckets<K>(store_.hash(), ways, keys, n, buckets);
    for (std::size_t i = 0; i < n; ++i) {
      for (unsigned w = 0; w < ways; ++w) {
        PrefetchBucketForWrite(view, buckets[i * ways + w]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const K key = keys[i];
      std::uint8_t r = 0;
      if (key != static_cast<K>(kEmptyKey)) {
        const auto key_w = static_cast<std::uint64_t>(key);
        for (unsigned w = 0; w < ways && r == 0; ++w) {
          const std::uint32_t b = buckets[i * ways + w];
          const BucketScan scan = kernel->bucket_scan(view, b, key_w);
          if (scan.match_slot >= 0) {
            store_.SetVal(b, static_cast<unsigned>(scan.match_slot), vals[i]);
            r = 1;
          }
        }
        if (r == 0) {
          const unsigned stash_n = store_.stash_count();
          for (unsigned j = 0; j < stash_n; ++j) {
            if (store_.stash_at(j).key == key_w) {
              store_.StashSetVal(j, static_cast<std::uint64_t>(vals[i]));
              r = 1;
              break;
            }
          }
        }
      }
      if (batch.ok != nullptr) batch.ok[base + i] = r;
    }
  }
}

template <typename K, typename V>
bool CuckooTable<K, V>::UpdateValue(K key, V val) {
  if (key == static_cast<K>(kEmptyKey)) return false;
  const LayoutSpec& spec = store_.spec();
  for (unsigned way = 0; way < spec.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (KeyAt(b, s) == key) {
        // Single aligned word store: concurrent readers see old or new.
        store_.SetVal(b, s, val);
        return true;
      }
    }
  }
  const unsigned stash_n = store_.stash_count();
  for (unsigned i = 0; i < stash_n; ++i) {
    if (store_.stash_at(i).key == static_cast<std::uint64_t>(key)) {
      store_.StashSetVal(i, static_cast<std::uint64_t>(val));
      return true;
    }
  }
  return false;
}

template <typename K, typename V>
bool CuckooTable<K, V>::Erase(K key) {
  if (key == static_cast<K>(kEmptyKey)) return false;
  const LayoutSpec& spec = store_.spec();
  for (unsigned way = 0; way < spec.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (KeyAt(b, s) == key) {
        store_.SetSlot(b, s, static_cast<K>(kEmptyKey), V{});
        store_.AdjustSize(-1);
        return true;
      }
    }
  }
  const unsigned stash_n = store_.stash_count();
  for (unsigned i = 0; i < stash_n; ++i) {
    if (store_.stash_at(i).key == static_cast<std::uint64_t>(key)) {
      store_.StashRemoveAt(i);
      store_.AdjustSize(-1);
      return true;
    }
  }
  return false;
}

template class CuckooTable<std::uint16_t, std::uint32_t>;
template class CuckooTable<std::uint32_t, std::uint32_t>;
template class CuckooTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht
