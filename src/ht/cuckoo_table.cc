#include "ht/cuckoo_table.h"

#include <cassert>
#include <stdexcept>
#include <vector>
#include <string>

namespace simdht {

template <typename K, typename V>
CuckooTable<K, V>::CuckooTable(unsigned ways, unsigned slots,
                               std::uint64_t num_buckets, BucketLayout layout,
                               std::uint64_t seed)
    : walk_rng_(seed ^ 0xA5A5A5A55A5A5A5AULL) {
  spec_.ways = ways;
  spec_.slots = slots;
  spec_.key_bits = sizeof(K) * 8;
  spec_.val_bits = sizeof(V) * 8;
  spec_.bucket_layout = layout;
  std::string why;
  if (!spec_.Validate(&why)) {
    throw std::invalid_argument("CuckooTable: bad layout: " + why);
  }
  num_buckets_ = NextPow2(num_buckets < 2 ? 2 : num_buckets);
  log2_buckets_ = Log2Floor(num_buckets_);
  // Multiply-shift needs at least one index bit and the key width must be
  // able to address the bucket range.
  if (log2_buckets_ >= sizeof(K) * 8) {
    throw std::invalid_argument(
        "CuckooTable: too many buckets for the key width");
  }
  hash_ = HashFamily::Make(log2_buckets_, seed);
  storage_.Allocate(num_buckets_ * spec_.bucket_bytes());
}

template <typename K, typename V>
std::uint8_t* CuckooTable<K, V>::key_addr(std::uint64_t b, unsigned s) {
  std::uint8_t* base = storage_.data() + b * spec_.bucket_bytes();
  if (spec_.bucket_layout == BucketLayout::kInterleaved) {
    return base + static_cast<std::size_t>(s) * spec_.slot_bytes();
  }
  return base + static_cast<std::size_t>(s) * sizeof(K);
}

template <typename K, typename V>
const std::uint8_t* CuckooTable<K, V>::key_addr(std::uint64_t b,
                                                unsigned s) const {
  return const_cast<CuckooTable*>(this)->key_addr(b, s);
}

template <typename K, typename V>
std::uint8_t* CuckooTable<K, V>::val_addr(std::uint64_t b, unsigned s) {
  if (spec_.bucket_layout == BucketLayout::kInterleaved) {
    return key_addr(b, s) + sizeof(K);
  }
  std::uint8_t* base = storage_.data() + b * spec_.bucket_bytes();
  return base + static_cast<std::size_t>(spec_.slots) * sizeof(K) +
         static_cast<std::size_t>(s) * sizeof(V);
}

template <typename K, typename V>
const std::uint8_t* CuckooTable<K, V>::val_addr(std::uint64_t b,
                                                unsigned s) const {
  return const_cast<CuckooTable*>(this)->val_addr(b, s);
}

template <typename K, typename V>
K CuckooTable<K, V>::KeyAt(std::uint64_t bucket, unsigned slot) const {
  K k;
  std::memcpy(&k, key_addr(bucket, slot), sizeof(K));
  return k;
}

template <typename K, typename V>
V CuckooTable<K, V>::ValAt(std::uint64_t bucket, unsigned slot) const {
  V v;
  std::memcpy(&v, val_addr(bucket, slot), sizeof(V));
  return v;
}

template <typename K, typename V>
void CuckooTable<K, V>::SetSlot(std::uint64_t bucket, unsigned slot, K key,
                                V val) {
  std::memcpy(key_addr(bucket, slot), &key, sizeof(K));
  std::memcpy(val_addr(bucket, slot), &val, sizeof(V));
}

template <typename K, typename V>
bool CuckooTable<K, V>::Find(K key, V* val) const {
  for (unsigned way = 0; way < spec_.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec_.slots; ++s) {
      if (KeyAt(b, s) == key) {
        if (val != nullptr) *val = ValAt(b, s);
        return true;
      }
    }
  }
  return false;
}

template <typename K, typename V>
bool CuckooTable<K, V>::Insert(K key, V val) {
  assert(key != static_cast<K>(kEmptyKey) && "key 0 is the empty sentinel");

  // Overwrite if present (cuckoo invariant: at most one copy of a key).
  for (unsigned way = 0; way < spec_.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec_.slots; ++s) {
      if (KeyAt(b, s) == key) {
        SetSlot(b, s, key, val);
        return true;
      }
    }
  }

  // Random-walk eviction: place into any empty candidate slot; otherwise
  // kick a random occupant to one of *its* alternate buckets and repeat.
  // Every displacement is recorded so a failed walk can be unwound — a
  // failed Insert leaves the table exactly as it was.
  struct Step {
    std::uint32_t bucket;
    unsigned slot;
  };
  std::vector<Step> path;
  path.reserve(64);

  K cur_key = key;
  V cur_val = val;
  for (unsigned kick = 0; kick < kMaxKicks; ++kick) {
    for (unsigned way = 0; way < spec_.ways; ++way) {
      const std::uint32_t b = BucketOf(way, cur_key);
      for (unsigned s = 0; s < spec_.slots; ++s) {
        if (KeyAt(b, s) == static_cast<K>(kEmptyKey)) {
          SetSlot(b, s, cur_key, cur_val);
          ++size_;
          return true;
        }
      }
    }
    const auto victim_way =
        static_cast<unsigned>(walk_rng_.NextBounded(spec_.ways));
    const auto victim_slot =
        static_cast<unsigned>(walk_rng_.NextBounded(spec_.slots));
    const std::uint32_t b = BucketOf(victim_way, cur_key);
    const K evicted_key = KeyAt(b, victim_slot);
    const V evicted_val = ValAt(b, victim_slot);
    SetSlot(b, victim_slot, cur_key, cur_val);
    path.push_back({b, victim_slot});
    cur_key = evicted_key;
    cur_val = evicted_val;
  }

  // Walk exhausted: unwind the displacements in reverse so every previously
  // stored entry is back in its original slot and `key` is not inserted.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const K displaced_key = KeyAt(it->bucket, it->slot);
    const V displaced_val = ValAt(it->bucket, it->slot);
    SetSlot(it->bucket, it->slot, cur_key, cur_val);
    cur_key = displaced_key;
    cur_val = displaced_val;
  }
  // After unwinding the carried entry is the original key/val again.
  return false;
}

template <typename K, typename V>
bool CuckooTable<K, V>::UpdateValue(K key, V val) {
  for (unsigned way = 0; way < spec_.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec_.slots; ++s) {
      if (KeyAt(b, s) == key) {
        // Single aligned word store: concurrent readers see old or new.
        std::memcpy(val_addr(b, s), &val, sizeof(V));
        return true;
      }
    }
  }
  return false;
}

template <typename K, typename V>
bool CuckooTable<K, V>::Erase(K key) {
  for (unsigned way = 0; way < spec_.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec_.slots; ++s) {
      if (KeyAt(b, s) == key) {
        SetSlot(b, s, static_cast<K>(kEmptyKey), V{});
        --size_;
        return true;
      }
    }
  }
  return false;
}

template <typename K, typename V>
TableView CuckooTable<K, V>::view() const {
  TableView v;
  v.data = storage_.data();
  v.num_buckets = num_buckets_;
  v.log2_buckets = log2_buckets_;
  v.spec = spec_;
  v.hash = hash_;
  return v;
}

template class CuckooTable<std::uint16_t, std::uint32_t>;
template class CuckooTable<std::uint32_t, std::uint32_t>;
template class CuckooTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht
