#include "ht/cuckoo_table.h"

#include <cassert>
#include <vector>

namespace simdht {

namespace {

template <typename K, typename V>
LayoutSpec SpecFor(unsigned ways, unsigned slots, BucketLayout layout) {
  LayoutSpec spec;
  spec.ways = ways;
  spec.slots = slots;
  spec.key_bits = sizeof(K) * 8;
  spec.val_bits = sizeof(V) * 8;
  spec.bucket_layout = layout;
  return spec;
}

}  // namespace

template <typename K, typename V>
CuckooTable<K, V>::CuckooTable(unsigned ways, unsigned slots,
                               std::uint64_t num_buckets, BucketLayout layout,
                               std::uint64_t seed)
    : store_(TableShape::For(SpecFor<K, V>(ways, slots, layout), num_buckets),
             seed),
      walk_rng_(seed ^ 0xA5A5A5A55A5A5A5AULL) {}

template <typename K, typename V>
bool CuckooTable<K, V>::Find(K key, V* val) const {
  const LayoutSpec& spec = store_.spec();
  for (unsigned way = 0; way < spec.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (KeyAt(b, s) == key) {
        if (val != nullptr) *val = ValAt(b, s);
        return true;
      }
    }
  }
  return false;
}

template <typename K, typename V>
bool CuckooTable<K, V>::Insert(K key, V val) {
  assert(key != static_cast<K>(kEmptyKey) && "key 0 is the empty sentinel");
  const LayoutSpec& spec = store_.spec();

  // Overwrite if present (cuckoo invariant: at most one copy of a key).
  for (unsigned way = 0; way < spec.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (KeyAt(b, s) == key) {
        store_.SetSlot(b, s, key, val);
        return true;
      }
    }
  }

  // Random-walk eviction: place into any empty candidate slot; otherwise
  // kick a random occupant to one of *its* alternate buckets and repeat.
  // Every displacement is recorded so a failed walk can be unwound — a
  // failed Insert leaves the table exactly as it was.
  struct Step {
    std::uint32_t bucket;
    unsigned slot;
  };
  std::vector<Step> path;
  path.reserve(64);

  K cur_key = key;
  V cur_val = val;
  for (unsigned kick = 0; kick < kMaxKicks; ++kick) {
    for (unsigned way = 0; way < spec.ways; ++way) {
      const std::uint32_t b = BucketOf(way, cur_key);
      for (unsigned s = 0; s < spec.slots; ++s) {
        if (KeyAt(b, s) == static_cast<K>(kEmptyKey)) {
          store_.SetSlot(b, s, cur_key, cur_val);
          store_.AdjustSize(1);
          return true;
        }
      }
    }
    const auto victim_way =
        static_cast<unsigned>(walk_rng_.NextBounded(spec.ways));
    const auto victim_slot =
        static_cast<unsigned>(walk_rng_.NextBounded(spec.slots));
    const std::uint32_t b = BucketOf(victim_way, cur_key);
    const K evicted_key = KeyAt(b, victim_slot);
    const V evicted_val = ValAt(b, victim_slot);
    store_.SetSlot(b, victim_slot, cur_key, cur_val);
    path.push_back({b, victim_slot});
    cur_key = evicted_key;
    cur_val = evicted_val;
  }

  // Walk exhausted: unwind the displacements in reverse so every previously
  // stored entry is back in its original slot and `key` is not inserted.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const K displaced_key = KeyAt(it->bucket, it->slot);
    const V displaced_val = ValAt(it->bucket, it->slot);
    store_.SetSlot(it->bucket, it->slot, cur_key, cur_val);
    cur_key = displaced_key;
    cur_val = displaced_val;
  }
  // After unwinding the carried entry is the original key/val again.
  return false;
}

template <typename K, typename V>
bool CuckooTable<K, V>::UpdateValue(K key, V val) {
  const LayoutSpec& spec = store_.spec();
  for (unsigned way = 0; way < spec.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (KeyAt(b, s) == key) {
        // Single aligned word store: concurrent readers see old or new.
        store_.SetVal(b, s, val);
        return true;
      }
    }
  }
  return false;
}

template <typename K, typename V>
bool CuckooTable<K, V>::Erase(K key) {
  const LayoutSpec& spec = store_.spec();
  for (unsigned way = 0; way < spec.ways; ++way) {
    const std::uint32_t b = BucketOf(way, key);
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (KeyAt(b, s) == key) {
        store_.SetSlot(b, s, static_cast<K>(kEmptyKey), V{});
        store_.AdjustSize(-1);
        return true;
      }
    }
  }
  return false;
}

template class CuckooTable<std::uint16_t, std::uint32_t>;
template class CuckooTable<std::uint32_t, std::uint32_t>;
template class CuckooTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht
