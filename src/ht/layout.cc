#include "ht/layout.h"

#include <sstream>

namespace simdht {

const char* BucketLayoutName(BucketLayout layout) {
  switch (layout) {
    case BucketLayout::kInterleaved: return "interleaved";
    case BucketLayout::kSplit: return "split";
  }
  return "?";
}

const char* ApproachName(Approach a) {
  switch (a) {
    case Approach::kScalar: return "Scalar";
    case Approach::kHorizontal: return "V-Hor";
    case Approach::kVertical: return "V-Ver";
    case Approach::kVerticalBcht: return "V-Ver/BCHT";
  }
  return "?";
}

std::string LayoutSpec::ToString() const {
  std::ostringstream os;
  if (bucketized()) {
    os << "(" << ways << "," << slots << ") BCHT";
  } else {
    os << ways << "-way cuckoo";
  }
  os << " k" << key_bits << "/v" << val_bits;
  if (bucket_layout == BucketLayout::kSplit) os << " split";
  return os.str();
}

bool LayoutSpec::Validate(std::string* why) const {
  auto fail = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (ways < 2 || ways > kMaxWays) return fail("ways (N) must be in [2, 4]");
  if (slots < 1 || slots > 8 || !IsPow2(slots)) {
    return fail("slots (m) must be a power of two in [1, 8]");
  }
  if (key_bits != 16 && key_bits != 32 && key_bits != 64) {
    return fail("key size must be 16, 32 or 64 bits");
  }
  if (val_bits != 32 && val_bits != 64) {
    return fail("value size must be 32 or 64 bits");
  }
  if (bucket_layout == BucketLayout::kInterleaved && key_bits != val_bits) {
    return fail("interleaved layout requires key and value widths to match");
  }
  return true;
}

}  // namespace simdht
