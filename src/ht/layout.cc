#include "ht/layout.h"

#include <cstring>
#include <sstream>

namespace simdht {

namespace {

template <typename K, typename V>
std::uint64_t ProbeStashTyped(const TableView& view, const void* keys,
                              void* vals, std::uint8_t* found,
                              std::size_t n) {
  const K* k = static_cast<const K*>(keys);
  V* v = static_cast<V*>(vals);
  const StashEntry* stash = view.stash;
  const unsigned count = view.stash_count;
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (found[i] != 0) continue;
    const auto key = static_cast<std::uint64_t>(k[i]);
    if (key == kEmptyKey) continue;
    for (unsigned j = 0; j < count; ++j) {
      if (stash[j].key == key) {
        v[i] = static_cast<V>(stash[j].val);
        found[i] = 1;
        ++hits;
        break;
      }
    }
  }
  return hits;
}

}  // namespace

std::uint64_t ProbeStash(const TableView& view, const void* keys, void* vals,
                         std::uint8_t* found, std::size_t n) {
  if (view.stash == nullptr || view.stash_count == 0) return 0;
  const unsigned kb = view.spec.key_bits;
  const unsigned vb = view.spec.val_bits;
  if (kb == 32 && vb == 32) {
    return ProbeStashTyped<std::uint32_t, std::uint32_t>(view, keys, vals,
                                                         found, n);
  }
  if (kb == 64 && vb == 64) {
    return ProbeStashTyped<std::uint64_t, std::uint64_t>(view, keys, vals,
                                                         found, n);
  }
  if (kb == 16 && vb == 32) {
    return ProbeStashTyped<std::uint16_t, std::uint32_t>(view, keys, vals,
                                                         found, n);
  }
  return 0;
}

const char* BucketLayoutName(BucketLayout layout) {
  switch (layout) {
    case BucketLayout::kInterleaved: return "interleaved";
    case BucketLayout::kSplit: return "split";
  }
  return "?";
}

const char* TableFamilyName(TableFamily family) {
  switch (family) {
    case TableFamily::kCuckoo: return "cuckoo";
    case TableFamily::kSwiss: return "swiss";
  }
  return "?";
}

const char* ApproachName(Approach a) {
  switch (a) {
    case Approach::kScalar: return "Scalar";
    case Approach::kHorizontal: return "V-Hor";
    case Approach::kVertical: return "V-Ver";
    case Approach::kVerticalBcht: return "V-Ver/BCHT";
  }
  return "?";
}

std::string LayoutSpec::ToString() const {
  std::ostringstream os;
  if (family == TableFamily::kSwiss) {
    os << "Swiss k" << key_bits << "/v" << val_bits;
    return os.str();
  }
  if (bucketized()) {
    os << "(" << ways << "," << slots << ") BCHT";
  } else {
    os << ways << "-way cuckoo";
  }
  os << " k" << key_bits << "/v" << val_bits;
  if (bucket_layout == BucketLayout::kSplit) os << " split";
  return os.str();
}

bool LayoutSpec::Validate(std::string* why) const {
  auto fail = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (family == TableFamily::kSwiss) {
    // Swiss tables are single-probe-sequence open addressing over 16-slot
    // control-byte groups; the cuckoo (N, m) knobs are fixed by the family.
    if (ways != 1) return fail("Swiss family requires ways == 1");
    if (slots != kSwissGroupSlots) {
      return fail("Swiss family requires 16-slot groups");
    }
    if (bucket_layout != BucketLayout::kSplit) {
      return fail("Swiss family requires the split bucket layout");
    }
    if (key_bits != 16 && key_bits != 32 && key_bits != 64) {
      return fail("key size must be 16, 32 or 64 bits");
    }
    if (val_bits != 32 && val_bits != 64) {
      return fail("value size must be 32 or 64 bits");
    }
    return true;
  }
  if (ways < 2 || ways > kMaxWays) return fail("ways (N) must be in [2, 4]");
  if (slots < 1 || slots > 8 || !IsPow2(slots)) {
    return fail("slots (m) must be a power of two in [1, 8]");
  }
  if (key_bits != 16 && key_bits != 32 && key_bits != 64) {
    return fail("key size must be 16, 32 or 64 bits");
  }
  if (val_bits != 32 && val_bits != 64) {
    return fail("value size must be 32 or 64 bits");
  }
  if (bucket_layout == BucketLayout::kInterleaved && key_bits != val_bits) {
    return fail("interleaved layout requires key and value widths to match");
  }
  return true;
}

}  // namespace simdht
