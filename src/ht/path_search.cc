#include "ht/path_search.h"

#include "common/compiler.h"

namespace simdht {

void PathSearchScratch::Prepare(unsigned max_nodes) {
  nodes.clear();
  if (nodes.capacity() < max_nodes) nodes.reserve(max_nodes);
  // Open addressing at <= 50% occupancy even if every node plus every root
  // marks a distinct bucket, so MarkVisited always terminates.
  const auto want = static_cast<std::uint32_t>(
      NextPow2(std::uint64_t{2} * (max_nodes + kMaxWays)));
  if (visited_buckets_.size() != want) {
    visited_buckets_.assign(want, 0);
    visited_gen_.assign(want, 0);
    generation_ = 0;
    mask_ = want - 1;
  }
  ++generation_;
  if (generation_ == 0) {  // stamp wrapped: invalidate all old generations
    std::fill(visited_gen_.begin(), visited_gen_.end(), 0);
    generation_ = 1;
  }
}

bool PathSearchScratch::MarkVisited(std::uint64_t bucket) {
  std::uint32_t i = static_cast<std::uint32_t>(Mix64(bucket)) & mask_;
  for (;;) {
    if (visited_gen_[i] != generation_) {
      visited_gen_[i] = generation_;
      visited_buckets_[i] = bucket;
      return true;
    }
    if (visited_buckets_[i] == bucket) return false;
    i = (i + 1) & mask_;
  }
}

}  // namespace simdht
