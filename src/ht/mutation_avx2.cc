// AVX2 mutation-scan kernels (compiled -mavx2, runtime-gated by the
// registry through CpuFeatures). 32-byte steps over the bucket; slots a
// full step cannot cover fall through to a scalar tail, so the kernels
// serve every (N, m) shape of their (key, val, layout) class. Swiss groups
// are 16 control bytes, so the SSE scan already saturates that family.
#include <immintrin.h>

#include <cstring>

#include "ht/mutation.h"

namespace simdht {

namespace {

// Every kernel exits through ScanTail (a non-vector local call), and gcc's
// automatic vzeroupper insertion treats the post-call state as clean — so
// no vzeroupper reaches the ret, and the dirty YMM upper state taxes every
// legacy-SSE instruction the caller runs next (measured 16x on libm's
// exp/log). Clear it explicitly once the vector loop is done.
inline void DoneWithVectors() { _mm256_zeroupper(); }

template <typename K>
void ScanTail(const TableView& view, std::uint64_t b, K probe, unsigned from,
              BucketScan* r) {
  const unsigned slots = view.spec.slots;
  for (unsigned s = from; s < slots; ++s) {
    K k;
    std::memcpy(&k, view.key_ptr(b, s), sizeof(K));
    if (r->match_slot < 0 && k == probe) r->match_slot = static_cast<int>(s);
    if (r->empty_slot < 0 && k == static_cast<K>(kEmptyKey)) {
      r->empty_slot = static_cast<int>(s);
    }
  }
}

BucketScan Avx2ScanK32Interleaved(const TableView& view, std::uint64_t b,
                                  std::uint64_t key) {
  BucketScan r;
  const std::uint8_t* base = view.bucket_ptr(b);
  const unsigned slots = view.spec.slots;
  const __m256i probe =
      _mm256_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(key)));
  const __m256i zero = _mm256_setzero_si256();
  unsigned s = 0;
  for (; s + 4 <= slots; s += 4) {  // 32 B = 4 interleaved k32v32 slots
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + std::size_t{s} * 8));
    const unsigned eq =
        static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, probe)))) &
        0x55;  // key lanes 0,2,4,6
    const unsigned em =
        static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, zero)))) &
        0x55;
    if (r.match_slot < 0 && eq != 0) {
      r.match_slot = static_cast<int>(s + (__builtin_ctz(eq) >> 1));
    }
    if (r.empty_slot < 0 && em != 0) {
      r.empty_slot = static_cast<int>(s + (__builtin_ctz(em) >> 1));
    }
  }
  DoneWithVectors();
  ScanTail<std::uint32_t>(view, b, static_cast<std::uint32_t>(key), s, &r);
  return r;
}

BucketScan Avx2ScanK32Split(const TableView& view, std::uint64_t b,
                            std::uint64_t key) {
  BucketScan r;
  const std::uint8_t* base = view.bucket_ptr(b);
  const unsigned slots = view.spec.slots;
  const __m256i probe =
      _mm256_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(key)));
  const __m256i zero = _mm256_setzero_si256();
  unsigned s = 0;
  for (; s + 8 <= slots; s += 8) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + std::size_t{s} * 4));
    const auto eq = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, probe))));
    const auto em = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, zero))));
    if (r.match_slot < 0 && eq != 0) {
      r.match_slot = static_cast<int>(s + __builtin_ctz(eq));
    }
    if (r.empty_slot < 0 && em != 0) {
      r.empty_slot = static_cast<int>(s + __builtin_ctz(em));
    }
  }
  DoneWithVectors();
  ScanTail<std::uint32_t>(view, b, static_cast<std::uint32_t>(key), s, &r);
  return r;
}

BucketScan Avx2ScanK64Interleaved(const TableView& view, std::uint64_t b,
                                  std::uint64_t key) {
  BucketScan r;
  const std::uint8_t* base = view.bucket_ptr(b);
  const unsigned slots = view.spec.slots;
  const __m256i probe = _mm256_set1_epi64x(static_cast<long long>(key));
  const __m256i zero = _mm256_setzero_si256();
  unsigned s = 0;
  for (; s + 2 <= slots; s += 2) {  // 32 B = 2 interleaved k64v64 slots
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + std::size_t{s} * 16));
    const unsigned eq =
        static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, probe)))) &
        0x5;  // key lanes 0 and 2
    const unsigned em =
        static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, zero)))) &
        0x5;
    if (r.match_slot < 0 && eq != 0) {
      r.match_slot = static_cast<int>(s + (__builtin_ctz(eq) >> 1));
    }
    if (r.empty_slot < 0 && em != 0) {
      r.empty_slot = static_cast<int>(s + (__builtin_ctz(em) >> 1));
    }
  }
  DoneWithVectors();
  ScanTail<std::uint64_t>(view, b, key, s, &r);
  return r;
}

BucketScan Avx2ScanK64Split(const TableView& view, std::uint64_t b,
                            std::uint64_t key) {
  BucketScan r;
  const std::uint8_t* base = view.bucket_ptr(b);
  const unsigned slots = view.spec.slots;
  const __m256i probe = _mm256_set1_epi64x(static_cast<long long>(key));
  const __m256i zero = _mm256_setzero_si256();
  unsigned s = 0;
  for (; s + 4 <= slots; s += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + std::size_t{s} * 8));
    const auto eq = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, probe))));
    const auto em = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, zero))));
    if (r.match_slot < 0 && eq != 0) {
      r.match_slot = static_cast<int>(s + __builtin_ctz(eq));
    }
    if (r.empty_slot < 0 && em != 0) {
      r.empty_slot = static_cast<int>(s + __builtin_ctz(em));
    }
  }
  DoneWithVectors();
  ScanTail<std::uint64_t>(view, b, key, s, &r);
  return r;
}

MutationKernel Avx2Cuckoo(const char* name, unsigned key_bits,
                          unsigned val_bits, BucketLayout layout,
                          BucketScanFn fn) {
  MutationKernel k;
  k.name = name;
  k.family = TableFamily::kCuckoo;
  k.level = SimdLevel::kAvx2;
  k.key_bits = key_bits;
  k.val_bits = val_bits;
  k.any_layout = false;
  k.bucket_layout = layout;
  k.bucket_scan = fn;
  return k;
}

}  // namespace

void AppendAvx2MutationKernels(std::vector<MutationKernel>* out) {
  out->push_back(Avx2Cuckoo("MutScan-AVX2/k32v32-inter", 32, 32,
                            BucketLayout::kInterleaved,
                            &Avx2ScanK32Interleaved));
  out->push_back(Avx2Cuckoo("MutScan-AVX2/k32-split", 32, 0,
                            BucketLayout::kSplit, &Avx2ScanK32Split));
  out->push_back(Avx2Cuckoo("MutScan-AVX2/k64v64-inter", 64, 64,
                            BucketLayout::kInterleaved,
                            &Avx2ScanK64Interleaved));
  out->push_back(Avx2Cuckoo("MutScan-AVX2/k64-split", 64, 0,
                            BucketLayout::kSplit, &Avx2ScanK64Split));
}

}  // namespace simdht
