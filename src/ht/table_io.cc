#include "ht/table_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace simdht {

namespace {

// Format 2: header gains the effective hash seed plus stash metadata, and
// stash entries follow the arena bytes. Version-1 snapshots predate the
// insertion engine and are not read back (nothing persists them anymore).
constexpr char kMagic[8] = {'S', 'H', 'T', 'B', '2', 0, 0, 0};
constexpr char kShardedMagic[8] = {'S', 'H', 'T', 'S', '2', 0, 0, 0};
constexpr char kSwissMagic[8] = {'S', 'H', 'T', 'W', '1', 0, 0, 0};

// Anything above this is a corrupt count, not a configuration: the router
// folds shard indices out of 32 avalanche bits, and no machine this suite
// targets runs more in one process.
constexpr std::uint32_t kMaxSnapshotShards = 1u << 12;

struct ShardedHeader {
  char magic[8];
  std::uint32_t shard_count;
  std::uint32_t reserved;
};

struct ShardRecord {
  std::uint32_t shard_index;
  std::uint32_t reserved;
  std::uint64_t seed;
};

struct SnapshotHeader {
  char magic[8];
  std::uint32_t key_bits;
  std::uint32_t val_bits;
  std::uint32_t ways;
  std::uint32_t slots;
  std::uint32_t bucket_layout;
  std::uint32_t log2_buckets;
  std::uint64_t size;
  std::uint64_t mult[kMaxWays];
  std::uint64_t data_bytes;
  std::uint64_t seed;            // effective hash seed (moves on rebuild)
  std::uint32_t stash_capacity;
  std::uint32_t stash_count;     // StashEntry records after the arena bytes
};

// Swiss snapshots carry the hash kind (wyhash is a legal family choice
// here, unlike cuckoo snapshots) and the control lane instead of a stash.
struct SwissSnapshotHeader {
  char magic[8];
  std::uint32_t key_bits;
  std::uint32_t val_bits;
  std::uint32_t hash_kind;       // HashKind: 0 multiply-shift, 1 wyhash
  std::uint32_t log2_groups;
  std::uint64_t size;
  std::uint64_t mult[kMaxWays];
  std::uint64_t data_bytes;      // slot arena
  std::uint64_t meta_bytes;      // control lane (mirror excluded)
  std::uint64_t seed;
};

}  // namespace

template <typename K, typename V>
bool SaveTable(const CuckooTable<K, V>& table, std::ostream& out) {
  SnapshotHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  const LayoutSpec& spec = table.spec();
  header.key_bits = spec.key_bits;
  header.val_bits = spec.val_bits;
  header.ways = spec.ways;
  header.slots = spec.slots;
  header.bucket_layout = static_cast<std::uint32_t>(spec.bucket_layout);
  header.log2_buckets = Log2Floor(table.num_buckets());
  header.size = table.size();
  for (unsigned i = 0; i < kMaxWays; ++i) {
    header.mult[i] = table.hash_family().mult[i];
  }
  header.data_bytes = table.table_bytes();
  const TableStore& store = table.store();
  header.seed = store.seed();
  header.stash_capacity = store.stash_capacity();
  header.stash_count = store.stash_count();

  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(table.raw_data()),
            static_cast<std::streamsize>(header.data_bytes));
  for (std::uint32_t i = 0; i < header.stash_count; ++i) {
    const StashEntry e = store.stash_at(i);
    out.write(reinterpret_cast<const char*>(&e), sizeof(e));
  }
  return static_cast<bool>(out);
}

template <typename K, typename V>
std::optional<CuckooTable<K, V>> LoadTable(std::istream& in) {
  SnapshotHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  if (header.key_bits != sizeof(K) * 8 || header.val_bits != sizeof(V) * 8) {
    return std::nullopt;  // snapshot was taken with different widths
  }
  if (header.log2_buckets >= 63 || header.bucket_layout > 1) {
    return std::nullopt;
  }
  if (header.stash_capacity > kMaxStashEntries ||
      header.stash_count > header.stash_capacity) {
    return std::nullopt;  // corrupt stash metadata
  }

  std::optional<CuckooTable<K, V>> maybe_table;
  try {
    maybe_table.emplace(header.ways, header.slots,
                        std::uint64_t{1} << header.log2_buckets,
                        static_cast<BucketLayout>(header.bucket_layout));
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // corrupt header: impossible layout
  }
  CuckooTable<K, V>& table = *maybe_table;
  if (table.table_bytes() != header.data_bytes) return std::nullopt;

  in.read(reinterpret_cast<char*>(table.raw_data_mutable()),
          static_cast<std::streamsize>(header.data_bytes));
  if (!in) return std::nullopt;

  TableStore& store = table.store();
  store.set_stash_capacity(header.stash_capacity);
  store.StashClear();
  for (std::uint32_t i = 0; i < header.stash_count; ++i) {
    StashEntry e;
    in.read(reinterpret_cast<char*>(&e), sizeof(e));
    if (!in) return std::nullopt;
    store.StashAppend(e.key, e.val);
  }

  HashFamily hash;
  hash.log2_buckets = header.log2_buckets;
  for (unsigned i = 0; i < kMaxWays; ++i) hash.mult[i] = header.mult[i];
  table.RestoreState(hash, header.size, header.seed);
  return maybe_table;
}

template <typename K, typename V>
bool SaveTableToFile(const CuckooTable<K, V>& table,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  return out && SaveTable(table, out);
}

template <typename K, typename V>
std::optional<CuckooTable<K, V>> LoadTableFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return LoadTable<K, V>(in);
}

template <typename K, typename V>
bool SaveSwissTable(const SwissTable<K, V>& table, std::ostream& out) {
  SwissSnapshotHeader header{};
  std::memcpy(header.magic, kSwissMagic, sizeof(kSwissMagic));
  const LayoutSpec& spec = table.spec();
  const TableStore& store = table.store();
  header.key_bits = spec.key_bits;
  header.val_bits = spec.val_bits;
  header.hash_kind = static_cast<std::uint32_t>(table.hash_family().kind);
  header.log2_groups = Log2Floor(table.num_buckets());
  header.size = table.size();
  for (unsigned i = 0; i < kMaxWays; ++i) {
    header.mult[i] = table.hash_family().mult[i];
  }
  header.data_bytes = table.table_bytes();
  header.meta_bytes = store.num_slots();
  header.seed = store.seed();

  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(table.raw_data()),
            static_cast<std::streamsize>(header.data_bytes));
  out.write(reinterpret_cast<const char*>(store.meta_data()),
            static_cast<std::streamsize>(header.meta_bytes));
  return static_cast<bool>(out);
}

template <typename K, typename V>
std::optional<SwissTable<K, V>> LoadSwissTable(std::istream& in) {
  SwissSnapshotHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, kSwissMagic, sizeof(kSwissMagic)) != 0) {
    return std::nullopt;
  }
  if (header.key_bits != sizeof(K) * 8 || header.val_bits != sizeof(V) * 8) {
    return std::nullopt;  // snapshot was taken with different widths
  }
  if (header.hash_kind > static_cast<std::uint32_t>(HashKind::kWyHash) ||
      header.log2_groups >= 48) {
    return std::nullopt;  // unknown hash family / corrupt group count
  }

  std::optional<SwissTable<K, V>> maybe_table;
  try {
    maybe_table.emplace(std::uint64_t{1} << header.log2_groups,
                        /*seed=*/0,
                        static_cast<HashKind>(header.hash_kind));
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  SwissTable<K, V>& table = *maybe_table;
  if (table.table_bytes() != header.data_bytes ||
      table.store().num_slots() != header.meta_bytes ||
      header.size > table.store().num_slots()) {
    return std::nullopt;  // shape mismatch: corrupt header
  }

  in.read(reinterpret_cast<char*>(table.raw_data_mutable()),
          static_cast<std::streamsize>(header.data_bytes));
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> lane(header.meta_bytes);
  in.read(reinterpret_cast<char*>(lane.data()),
          static_cast<std::streamsize>(header.meta_bytes));
  if (!in) return std::nullopt;
  table.store().AdoptMeta(lane.data());

  HashFamily hash;
  hash.log2_buckets = header.log2_groups;
  hash.kind = static_cast<HashKind>(header.hash_kind);
  for (unsigned i = 0; i < kMaxWays; ++i) hash.mult[i] = header.mult[i];
  table.RestoreState(hash, header.size, header.seed);
  return maybe_table;
}

template <typename K, typename V>
bool SaveSwissTableToFile(const SwissTable<K, V>& table,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  return out && SaveSwissTable(table, out);
}

template <typename K, typename V>
std::optional<SwissTable<K, V>> LoadSwissTableFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return LoadSwissTable<K, V>(in);
}

template <typename K, typename V>
bool SaveShardedTable(const ShardedTable<K, V>& table, std::ostream& out) {
  ShardedHeader header{};
  std::memcpy(header.magic, kShardedMagic, sizeof(kShardedMagic));
  header.shard_count = table.num_shards();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (unsigned s = 0; s < table.num_shards(); ++s) {
    ShardRecord record{};
    record.shard_index = s;
    record.seed = table.shard_seed(s);
    out.write(reinterpret_cast<const char*>(&record), sizeof(record));
    if (!SaveTable(table.shard(s).table(), out)) return false;
  }
  return static_cast<bool>(out);
}

template <typename K, typename V>
std::optional<ShardedTable<K, V>> LoadShardedTable(std::istream& in) {
  ShardedHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in ||
      std::memcmp(header.magic, kShardedMagic, sizeof(kShardedMagic)) != 0) {
    return std::nullopt;
  }
  if (header.shard_count == 0 || header.shard_count > kMaxSnapshotShards) {
    return std::nullopt;  // corrupt shard count
  }

  std::vector<CuckooTable<K, V>> shard_tables;
  std::vector<std::uint64_t> shard_seeds;
  shard_tables.reserve(header.shard_count);
  shard_seeds.reserve(header.shard_count);
  for (std::uint32_t s = 0; s < header.shard_count; ++s) {
    ShardRecord record{};
    in.read(reinterpret_cast<char*>(&record), sizeof(record));
    if (!in || record.shard_index != s) {
      return std::nullopt;  // truncated or out-of-sequence shard record
    }
    std::optional<CuckooTable<K, V>> shard = LoadTable<K, V>(in);
    if (!shard) return std::nullopt;
    // A shard's stored multipliers must be the ones its recorded seed
    // derives: otherwise the router/seed metadata lies about the data and
    // every re-derived hash (rebuilds, resharding) would misplace keys.
    const HashFamily expected = HashFamily::Make(
        Log2Floor(shard->num_buckets()), record.seed);
    for (unsigned w = 0; w < kMaxWays; ++w) {
      if (shard->hash_family().mult[w] != expected.mult[w]) {
        return std::nullopt;  // seed mismatch
      }
    }
    shard_tables.push_back(std::move(*shard));
    shard_seeds.push_back(record.seed);
  }
  return ShardedTable<K, V>(std::move(shard_tables), std::move(shard_seeds));
}

template <typename K, typename V>
bool SaveShardedTableToFile(const ShardedTable<K, V>& table,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  return out && SaveShardedTable(table, out);
}

template <typename K, typename V>
std::optional<ShardedTable<K, V>> LoadShardedTableFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return LoadShardedTable<K, V>(in);
}

template bool SaveTable(const CuckooTable<std::uint32_t, std::uint32_t>&,
                        std::ostream&);
template bool SaveTable(const CuckooTable<std::uint64_t, std::uint64_t>&,
                        std::ostream&);
template bool SaveTable(const CuckooTable<std::uint16_t, std::uint32_t>&,
                        std::ostream&);
template std::optional<CuckooTable<std::uint32_t, std::uint32_t>> LoadTable(
    std::istream&);
template std::optional<CuckooTable<std::uint64_t, std::uint64_t>> LoadTable(
    std::istream&);
template std::optional<CuckooTable<std::uint16_t, std::uint32_t>> LoadTable(
    std::istream&);
template bool SaveTableToFile(
    const CuckooTable<std::uint32_t, std::uint32_t>&, const std::string&);
template bool SaveTableToFile(
    const CuckooTable<std::uint64_t, std::uint64_t>&, const std::string&);
template bool SaveTableToFile(
    const CuckooTable<std::uint16_t, std::uint32_t>&, const std::string&);
template std::optional<CuckooTable<std::uint32_t, std::uint32_t>>
LoadTableFromFile(const std::string&);
template std::optional<CuckooTable<std::uint64_t, std::uint64_t>>
LoadTableFromFile(const std::string&);
template std::optional<CuckooTable<std::uint16_t, std::uint32_t>>
LoadTableFromFile(const std::string&);

template bool SaveSwissTable(const SwissTable<std::uint32_t, std::uint32_t>&,
                             std::ostream&);
template bool SaveSwissTable(const SwissTable<std::uint64_t, std::uint64_t>&,
                             std::ostream&);
template bool SaveSwissTable(const SwissTable<std::uint16_t, std::uint32_t>&,
                             std::ostream&);
template std::optional<SwissTable<std::uint32_t, std::uint32_t>>
LoadSwissTable(std::istream&);
template std::optional<SwissTable<std::uint64_t, std::uint64_t>>
LoadSwissTable(std::istream&);
template std::optional<SwissTable<std::uint16_t, std::uint32_t>>
LoadSwissTable(std::istream&);
template bool SaveSwissTableToFile(
    const SwissTable<std::uint32_t, std::uint32_t>&, const std::string&);
template bool SaveSwissTableToFile(
    const SwissTable<std::uint64_t, std::uint64_t>&, const std::string&);
template bool SaveSwissTableToFile(
    const SwissTable<std::uint16_t, std::uint32_t>&, const std::string&);
template std::optional<SwissTable<std::uint32_t, std::uint32_t>>
LoadSwissTableFromFile(const std::string&);
template std::optional<SwissTable<std::uint64_t, std::uint64_t>>
LoadSwissTableFromFile(const std::string&);
template std::optional<SwissTable<std::uint16_t, std::uint32_t>>
LoadSwissTableFromFile(const std::string&);

template bool SaveShardedTable(
    const ShardedTable<std::uint32_t, std::uint32_t>&, std::ostream&);
template bool SaveShardedTable(
    const ShardedTable<std::uint64_t, std::uint64_t>&, std::ostream&);
template bool SaveShardedTable(
    const ShardedTable<std::uint16_t, std::uint32_t>&, std::ostream&);
template std::optional<ShardedTable<std::uint32_t, std::uint32_t>>
LoadShardedTable(std::istream&);
template std::optional<ShardedTable<std::uint64_t, std::uint64_t>>
LoadShardedTable(std::istream&);
template std::optional<ShardedTable<std::uint16_t, std::uint32_t>>
LoadShardedTable(std::istream&);
template bool SaveShardedTableToFile(
    const ShardedTable<std::uint32_t, std::uint32_t>&, const std::string&);
template bool SaveShardedTableToFile(
    const ShardedTable<std::uint64_t, std::uint64_t>&, const std::string&);
template bool SaveShardedTableToFile(
    const ShardedTable<std::uint16_t, std::uint32_t>&, const std::string&);
template std::optional<ShardedTable<std::uint32_t, std::uint32_t>>
LoadShardedTableFromFile(const std::string&);
template std::optional<ShardedTable<std::uint64_t, std::uint64_t>>
LoadShardedTableFromFile(const std::string&);
template std::optional<ShardedTable<std::uint16_t, std::uint32_t>>
LoadShardedTableFromFile(const std::string&);

}  // namespace simdht
