// SSE mutation-scan kernels (baseline vector tier, compiled -msse4.2).
//
// Each scan reports the first key-match slot and the first empty slot of
// one bucket in ascending slot order — the exact order the scalar insert
// walks — so the batched engines can substitute a scan for the scalar loop
// without changing placement. Interleaved buckets compare whole {key,val}
// lanes and mask the result down to key lanes; split buckets compare the
// dense key block directly. Selection is gated on runtime CpuFeatures by
// the registry, so compiling this TU at SSE4.2 is safe on any host.
#include <immintrin.h>

#include <cstring>

#include "ht/mutation.h"

namespace simdht {

namespace {

// Scalar tail shared by every cuckoo scan: slots a 16-byte step cannot
// cover (odd slot counts, sub-vector buckets).
template <typename K>
void ScanTail(const TableView& view, std::uint64_t b, K probe, unsigned from,
              BucketScan* r) {
  const unsigned slots = view.spec.slots;
  for (unsigned s = from; s < slots; ++s) {
    K k;
    std::memcpy(&k, view.key_ptr(b, s), sizeof(K));
    if (r->match_slot < 0 && k == probe) r->match_slot = static_cast<int>(s);
    if (r->empty_slot < 0 && k == static_cast<K>(kEmptyKey)) {
      r->empty_slot = static_cast<int>(s);
    }
  }
}

BucketScan SseScanK32Interleaved(const TableView& view, std::uint64_t b,
                                 std::uint64_t key) {
  BucketScan r;
  const std::uint8_t* base = view.bucket_ptr(b);
  const unsigned slots = view.spec.slots;
  const __m128i probe =
      _mm_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(key)));
  const __m128i zero = _mm_setzero_si128();
  unsigned s = 0;
  for (; s + 2 <= slots; s += 2) {  // 16 B = 2 interleaved k32v32 slots
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(base + std::size_t{s} * 8));
    const unsigned eq = static_cast<unsigned>(_mm_movemask_ps(
                            _mm_castsi128_ps(_mm_cmpeq_epi32(v, probe)))) &
                        0x5;  // key lanes 0 and 2
    const unsigned em = static_cast<unsigned>(_mm_movemask_ps(
                            _mm_castsi128_ps(_mm_cmpeq_epi32(v, zero)))) &
                        0x5;
    if (r.match_slot < 0 && eq != 0) {
      r.match_slot = static_cast<int>(s + (__builtin_ctz(eq) >> 1));
    }
    if (r.empty_slot < 0 && em != 0) {
      r.empty_slot = static_cast<int>(s + (__builtin_ctz(em) >> 1));
    }
  }
  ScanTail<std::uint32_t>(view, b, static_cast<std::uint32_t>(key), s, &r);
  return r;
}

BucketScan SseScanK32Split(const TableView& view, std::uint64_t b,
                           std::uint64_t key) {
  BucketScan r;
  const std::uint8_t* base = view.bucket_ptr(b);  // split: keys first
  const unsigned slots = view.spec.slots;
  const __m128i probe =
      _mm_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(key)));
  const __m128i zero = _mm_setzero_si128();
  unsigned s = 0;
  for (; s + 4 <= slots; s += 4) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(base + std::size_t{s} * 4));
    const auto eq = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, probe))));
    const auto em = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, zero))));
    if (r.match_slot < 0 && eq != 0) {
      r.match_slot = static_cast<int>(s + __builtin_ctz(eq));
    }
    if (r.empty_slot < 0 && em != 0) {
      r.empty_slot = static_cast<int>(s + __builtin_ctz(em));
    }
  }
  ScanTail<std::uint32_t>(view, b, static_cast<std::uint32_t>(key), s, &r);
  return r;
}

BucketScan SseScanK64Interleaved(const TableView& view, std::uint64_t b,
                                 std::uint64_t key) {
  BucketScan r;
  const std::uint8_t* base = view.bucket_ptr(b);
  const unsigned slots = view.spec.slots;
  const __m128i probe = _mm_set1_epi64x(static_cast<long long>(key));
  const __m128i zero = _mm_setzero_si128();
  for (unsigned s = 0; s < slots; ++s) {  // 16 B = 1 interleaved k64v64 slot
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(base + std::size_t{s} * 16));
    const unsigned eq = static_cast<unsigned>(_mm_movemask_pd(
                            _mm_castsi128_pd(_mm_cmpeq_epi64(v, probe)))) &
                        0x1;  // key lane 0
    const unsigned em = static_cast<unsigned>(_mm_movemask_pd(
                            _mm_castsi128_pd(_mm_cmpeq_epi64(v, zero)))) &
                        0x1;
    if (r.match_slot < 0 && eq != 0) r.match_slot = static_cast<int>(s);
    if (r.empty_slot < 0 && em != 0) r.empty_slot = static_cast<int>(s);
    if (r.match_slot >= 0 && r.empty_slot >= 0) break;
  }
  return r;
}

BucketScan SseScanK64Split(const TableView& view, std::uint64_t b,
                           std::uint64_t key) {
  BucketScan r;
  const std::uint8_t* base = view.bucket_ptr(b);
  const unsigned slots = view.spec.slots;
  const __m128i probe = _mm_set1_epi64x(static_cast<long long>(key));
  const __m128i zero = _mm_setzero_si128();
  unsigned s = 0;
  for (; s + 2 <= slots; s += 2) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(base + std::size_t{s} * 8));
    const auto eq = static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(v, probe))));
    const auto em = static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(v, zero))));
    if (r.match_slot < 0 && eq != 0) {
      r.match_slot = static_cast<int>(s + __builtin_ctz(eq));
    }
    if (r.empty_slot < 0 && em != 0) {
      r.empty_slot = static_cast<int>(s + __builtin_ctz(em));
    }
  }
  ScanTail<std::uint64_t>(view, b, key, s, &r);
  return r;
}

BucketScan SseScanK16Split(const TableView& view, std::uint64_t b,
                           std::uint64_t key) {
  BucketScan r;
  const std::uint8_t* base = view.bucket_ptr(b);
  const unsigned slots = view.spec.slots;
  const __m128i probe = _mm_set1_epi16(
      static_cast<short>(static_cast<std::uint16_t>(key)));
  const __m128i zero = _mm_setzero_si128();
  unsigned s = 0;
  for (; s + 8 <= slots; s += 8) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(base + std::size_t{s} * 2));
    const auto eq = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi16(v, probe)));
    const auto em = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi16(v, zero)));
    if (r.match_slot < 0 && eq != 0) {
      r.match_slot = static_cast<int>(s + (__builtin_ctz(eq) >> 1));
    }
    if (r.empty_slot < 0 && em != 0) {
      r.empty_slot = static_cast<int>(s + (__builtin_ctz(em) >> 1));
    }
  }
  ScanTail<std::uint16_t>(view, b, static_cast<std::uint16_t>(key), s, &r);
  return r;
}

GroupScan SseGroupScan(const std::uint8_t* ctrl, std::uint8_t h2) {
  GroupScan r;
  const __m128i v =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
  r.match_mask = static_cast<std::uint32_t>(_mm_movemask_epi8(
      _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(h2)))));
  r.empty_mask = static_cast<std::uint32_t>(_mm_movemask_epi8(
      _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(kCtrlEmpty)))));
  r.free_mask =
      r.empty_mask |
      static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(
          v, _mm_set1_epi8(static_cast<char>(kCtrlTombstone)))));
  return r;
}

MutationKernel SseCuckoo(const char* name, unsigned key_bits,
                         unsigned val_bits, BucketLayout layout,
                         BucketScanFn fn) {
  MutationKernel k;
  k.name = name;
  k.family = TableFamily::kCuckoo;
  k.level = SimdLevel::kSse42;
  k.key_bits = key_bits;
  k.val_bits = val_bits;
  k.any_layout = false;
  k.bucket_layout = layout;
  k.bucket_scan = fn;
  return k;
}

}  // namespace

void AppendSseMutationKernels(std::vector<MutationKernel>* out) {
  out->push_back(SseCuckoo("MutScan-SSE/k32v32-inter", 32, 32,
                           BucketLayout::kInterleaved,
                           &SseScanK32Interleaved));
  out->push_back(SseCuckoo("MutScan-SSE/k32-split", 32, 0,
                           BucketLayout::kSplit, &SseScanK32Split));
  out->push_back(SseCuckoo("MutScan-SSE/k64v64-inter", 64, 64,
                           BucketLayout::kInterleaved,
                           &SseScanK64Interleaved));
  out->push_back(SseCuckoo("MutScan-SSE/k64-split", 64, 0,
                           BucketLayout::kSplit, &SseScanK64Split));
  out->push_back(SseCuckoo("MutScan-SSE/k16-split", 16, 0,
                           BucketLayout::kSplit, &SseScanK16Split));
  MutationKernel swiss;
  swiss.name = "MutScan-SSE/ctrl";
  swiss.family = TableFamily::kSwiss;
  swiss.level = SimdLevel::kSse42;
  swiss.group_scan = &SseGroupScan;
  out->push_back(swiss);
}

}  // namespace simdht
