#include "ht/concurrent_table.h"

#include <algorithm>
#include <vector>

#include "hash/block_hash.h"

namespace simdht {

template <typename K, typename V>
ConcurrentCuckooTable<K, V>::ConcurrentCuckooTable(
    unsigned ways, unsigned slots, std::uint64_t num_buckets,
    BucketLayout layout, std::uint64_t seed)
    : table_(ways, slots, num_buckets, layout, seed) {}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::Locate(K key, std::uint64_t* bucket,
                                         unsigned* slot) const {
  const LayoutSpec& spec = table_.spec();
  for (unsigned way = 0; way < spec.ways; ++way) {
    const std::uint32_t b = table_.hash_family().template Bucket<K>(way, key);
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (table_.KeyAt(b, s) == key) {
        *bucket = b;
        *slot = s;
        return true;
      }
    }
  }
  return false;
}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::Find(K key, V* val) const {
  if (key == static_cast<K>(kEmptyKey)) return false;
  const LayoutSpec& spec = table_.spec();
  const TableStore& st = store();

  for (;;) {
    // StashVersion doubles as the rebuild generation: every rebuild
    // publication brackets itself with it, so it MUST be snapshotted
    // before the hash family is read. Reading the hash first loses: a
    // rebuild can complete in between, and the stripe versions — all even
    // again and only snapshotted afterwards — would validate a probe of
    // buckets computed from the dead hash family.
    const std::uint64_t stash_before =
        st.StashVersion().load(std::memory_order_acquire);
    bool writer_active = (stash_before & 1) != 0;

    // Candidate buckets are recomputed on every attempt: a rebuild
    // recovery can reseed the hash family mid-read.
    const HashFamily& hash = table_.hash_family();
    std::uint32_t buckets[kMaxWays];
    for (unsigned w = 0; w < spec.ways; ++w) {
      buckets[w] = hash.template Bucket<K>(w, key);
    }

    std::uint64_t before[kMaxWays];
    for (unsigned w = 0; w < spec.ways; ++w) {
      before[w] = st.StripeFor(buckets[w]).load(std::memory_order_acquire);
      writer_active |= (before[w] & 1) != 0;
    }
    if (writer_active) continue;

    V found_val{};
    bool found = false;
    for (unsigned w = 0; w < spec.ways && !found; ++w) {
      for (unsigned s = 0; s < spec.slots; ++s) {
        if (table_.KeyAt(buckets[w], s) == key) {
          found_val = table_.ValAt(buckets[w], s);
          found = true;
          break;
        }
      }
    }
    if (!found) {
      const unsigned stash_n = st.stash_count();
      for (unsigned i = 0; i < stash_n; ++i) {
        const StashEntry e = st.stash_at(i);
        if (e.key == static_cast<std::uint64_t>(key)) {
          found_val = static_cast<V>(e.val);
          found = true;
          break;
        }
      }
    }

    std::atomic_thread_fence(std::memory_order_acquire);
    bool stable = true;
    for (unsigned w = 0; w < spec.ways; ++w) {
      stable &= st.StripeFor(buckets[w]).load(std::memory_order_acquire) ==
                before[w];
    }
    stable &= st.StashVersion().load(std::memory_order_acquire) ==
              stash_before;
    if (stable) {
      if (found && val != nullptr) *val = found_val;
      return found;
    }
  }
}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::Insert(K key, V val) {
  if (key == static_cast<K>(kEmptyKey)) return false;
  std::lock_guard<std::mutex> lock(writer_mu_);
  return InsertLocked(key, val);
}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::InsertLocked(K key, V val) {
  TableStore& st = store();

  // Overwrite in place if present (buckets, then stash).
  {
    std::uint64_t b;
    unsigned s;
    if (Locate(key, &b, &s)) {
      st.EpochEnterWrite();
      st.BumpOdd(b);
      table_.WriteSlot(b, s, key, val);
      st.BumpEven(b);
      st.EpochExitWrite();
      return true;
    }
    const unsigned stash_n = st.stash_count();
    for (unsigned i = 0; i < stash_n; ++i) {
      if (st.stash_at(i).key == static_cast<std::uint64_t>(key)) {
        // Single aligned word store: readers observe old or new.
        st.StashSetVal(i, static_cast<std::uint64_t>(val));
        return true;
      }
    }
  }

  // A BFS chain can, rarely, visit the same slot twice (a bucket cycle);
  // the replay detects that via per-move validation and the whole attempt
  // restarts on the mutated-but-consistent table.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int rc = InsertAttempt(key, val);
    if (rc >= 0) {
      if (rc != 0) return true;
      break;  // BFS found no path: fall through to stash / rebuild
    }
  }

  // No eviction path: spill to the overflow stash. An append publishes the
  // entry before the count (release), so readers need no retry.
  if (st.StashAppend(static_cast<std::uint64_t>(key),
                     static_cast<std::uint64_t>(val))) {
    table_.AdjustSize(1);
    ++table_.mutable_insert_stats().stash_inserts;
    return true;
  }

  // Stash full too: rebuild into a staging table off to the side, then
  // publish by overwriting the live arena under the write epoch with every
  // stripe odd — readers that raced the copy retry and see only the fully
  // published table.
  std::optional<CuckooTable<K, V>> staging =
      table_.BuildRecoveryTable(key, val);
  if (staging) {
    st.EpochEnterWrite();
    st.BumpAllOdd();
    st.StashVersion().fetch_add(1, std::memory_order_acq_rel);
    table_.AdoptRebuilt(*staging);
    st.StashVersion().fetch_add(1, std::memory_order_release);
    st.BumpAllEven();
    st.EpochExitWrite();
    return true;
  }

  ++table_.mutable_insert_stats().failed_inserts;
  return false;
}

template <typename K, typename V>
int ConcurrentCuckooTable<K, V>::InsertAttempt(K key, V val) {
  const LayoutSpec& spec = table_.spec();
  const HashFamily& hash = table_.hash_family();
  TableStore& st = store();

  // Shortest eviction chain via the shared BFS engine (read-only; holding
  // the writer mutex means the search result is stale only if this very
  // replay aliases a slot, which the per-move validation below catches).
  if (!table_.FindInsertionPath(key, &path_)) return 0;

  // Replay the path back-to-front: move each evictee into the hole below
  // it, so every key is written to its destination before its source slot
  // is reused. Readers racing a move retry via the bumped stripes. Each
  // move is validated — if the chain aliased a slot (the occupant changed
  // under an earlier move of this very replay), abort; every completed
  // move left the table consistent, so the caller can simply retry.
  st.EpochEnterWrite();
  bool aborted = false;
  std::size_t applied_from = path_.size();  // first index whose move ran
  for (std::size_t i = path_.size(); i-- > 1;) {
    const PathStep& src = path_[i - 1];
    const PathStep& dst = path_[i];
    const K moved_key = table_.KeyAt(src.bucket, src.slot);
    const V moved_val = table_.ValAt(src.bucket, src.slot);

    bool valid = moved_key != static_cast<K>(kEmptyKey);
    if (valid) {
      valid = false;
      for (unsigned w = 0; w < spec.ways; ++w) {
        valid |= hash.template Bucket<K>(w, moved_key) == dst.bucket;
      }
    }
    if (!valid) {
      aborted = true;
      break;
    }

    st.BumpOdd(dst.bucket);
    st.BumpOdd(src.bucket);
    table_.WriteSlot(dst.bucket, dst.slot, moved_key, moved_val);
    table_.WriteSlot(src.bucket, src.slot, static_cast<K>(kEmptyKey), V{});
    st.BumpEven(src.bucket);
    st.BumpEven(dst.bucket);
    applied_from = i;
  }

  if (!aborted) {
    const PathStep& home = path_.front();
    st.BumpOdd(home.bucket);
    table_.WriteSlot(home.bucket, home.slot, key, val);
    st.BumpEven(home.bucket);
    table_.AdjustSize(1);
    InsertStats& stats = table_.mutable_insert_stats();
    if (path_.size() == 1) {
      ++stats.direct_inserts;
    } else {
      ++stats.path_inserts;
      stats.path_moves += path_.size() - applied_from;
    }
  }
  st.EpochExitWrite();
  return aborted ? -1 : 1;
}

template <typename K, typename V>
void ConcurrentCuckooTable<K, V>::BatchInsert(const MutationBatch<K, V>& batch) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  TableStore& st = store();
  const MutationKernel* kernel = MutationRegistry::Get().ForCuckoo(st.spec());
  const unsigned ways = st.spec().ways;
  std::uint32_t buckets[kMutationChunk * kMaxWays];
  for (std::size_t base = 0; base < batch.size; base += kMutationChunk) {
    const std::size_t n = std::min(kMutationChunk, batch.size - base);
    const K* keys = batch.keys + base;
    const V* vals = batch.vals + base;
    std::uint64_t chunk_seed = st.seed();
    TableView view = st.view();
    BlockBuckets<K>(st.hash(), ways, keys, n, buckets);
    for (std::size_t i = 0; i < n; ++i) {
      for (unsigned w = 0; w < ways; ++w) {
        PrefetchBucketForWrite(view, buckets[i * ways + w]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const K key = keys[i];
      std::uint8_t r = 1;
      bool done = false;
      if (key == static_cast<K>(kEmptyKey)) {
        r = 0;
        done = true;
      }
      // A conflict-tail InsertLocked can publish a rebuild (new seed): the
      // chunk's remaining block-hashed candidates are stale — re-hash them.
      if (!done && st.seed() != chunk_seed) {
        chunk_seed = st.seed();
        view = st.view();
        BlockBuckets<K>(st.hash(), ways, keys + i, n - i, buckets + i * ways);
      }
      if (!done) {
        const auto key_w = static_cast<std::uint64_t>(key);
        int place_way = -1;
        int place_slot = -1;
        for (unsigned w = 0; w < ways; ++w) {
          const std::uint32_t b = buckets[i * ways + w];
          const BucketScan scan = kernel->bucket_scan(view, b, key_w);
          if (scan.match_slot >= 0) {
            // Duplicate overwrite: the same stripe + epoch bracket the
            // per-key Insert uses for an in-place rewrite.
            st.EpochEnterWrite();
            st.BumpOdd(b);
            table_.WriteSlot(b, static_cast<unsigned>(scan.match_slot), key,
                             vals[i]);
            st.BumpEven(b);
            st.EpochExitWrite();
            done = true;
            break;
          }
          if (place_way < 0 && scan.empty_slot >= 0) {
            place_way = static_cast<int>(w);
            place_slot = scan.empty_slot;
          }
        }
        if (!done) {
          const unsigned stash_n = st.stash_count();
          for (unsigned j = 0; j < stash_n; ++j) {
            if (st.stash_at(j).key == key_w) {
              // Single aligned word store: readers observe old or new.
              st.StashSetVal(j, static_cast<std::uint64_t>(vals[i]));
              done = true;
              break;
            }
          }
        }
        if (!done && place_way >= 0) {
          // Direct insert — a BFS path of length one, with its exact
          // publication order: epoch, stripe odd, slot write, stripe even,
          // size, stats, epoch exit.
          const std::uint32_t b = buckets[i * ways + place_way];
          st.EpochEnterWrite();
          st.BumpOdd(b);
          table_.WriteSlot(b, static_cast<unsigned>(place_slot), key, vals[i]);
          st.BumpEven(b);
          table_.AdjustSize(1);
          ++table_.mutable_insert_stats().direct_inserts;
          st.EpochExitWrite();
          done = true;
        }
        if (!done) {
          r = InsertLocked(key, vals[i]) ? 1 : 0;
        }
      }
      if (batch.ok != nullptr) batch.ok[base + i] = r;
    }
  }
}

template <typename K, typename V>
void ConcurrentCuckooTable<K, V>::BatchUpdate(const MutationBatch<K, V>& batch) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  TableStore& st = store();
  const MutationKernel* kernel = MutationRegistry::Get().ForCuckoo(st.spec());
  const unsigned ways = st.spec().ways;
  std::uint32_t buckets[kMutationChunk * kMaxWays];
  for (std::size_t base = 0; base < batch.size; base += kMutationChunk) {
    const std::size_t n = std::min(kMutationChunk, batch.size - base);
    const K* keys = batch.keys + base;
    const V* vals = batch.vals + base;
    const TableView view = st.view();
    BlockBuckets<K>(st.hash(), ways, keys, n, buckets);
    for (std::size_t i = 0; i < n; ++i) {
      for (unsigned w = 0; w < ways; ++w) {
        PrefetchBucketForWrite(view, buckets[i * ways + w]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const K key = keys[i];
      std::uint8_t r = 0;
      if (key != static_cast<K>(kEmptyKey)) {
        const auto key_w = static_cast<std::uint64_t>(key);
        for (unsigned w = 0; w < ways && r == 0; ++w) {
          const std::uint32_t b = buckets[i * ways + w];
          const BucketScan scan = kernel->bucket_scan(view, b, key_w);
          if (scan.match_slot >= 0) {
            // Same stripe bump (no epoch) as the per-key UpdateValue.
            st.BumpOdd(b);
            table_.WriteSlot(b, static_cast<unsigned>(scan.match_slot), key,
                             vals[i]);
            st.BumpEven(b);
            r = 1;
          }
        }
        if (r == 0) {
          const unsigned stash_n = st.stash_count();
          for (unsigned j = 0; j < stash_n; ++j) {
            if (st.stash_at(j).key == key_w) {
              st.StashSetVal(j, static_cast<std::uint64_t>(vals[i]));
              r = 1;
              break;
            }
          }
        }
      }
      if (batch.ok != nullptr) batch.ok[base + i] = r;
    }
  }
}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::UpdateValue(K key, V val) {
  if (key == static_cast<K>(kEmptyKey)) return false;
  std::lock_guard<std::mutex> lock(writer_mu_);
  TableStore& st = store();
  std::uint64_t b;
  unsigned s;
  if (Locate(key, &b, &s)) {
    st.BumpOdd(b);
    table_.WriteSlot(b, s, key, val);
    st.BumpEven(b);
    return true;
  }
  const unsigned stash_n = st.stash_count();
  for (unsigned i = 0; i < stash_n; ++i) {
    if (st.stash_at(i).key == static_cast<std::uint64_t>(key)) {
      st.StashSetVal(i, static_cast<std::uint64_t>(val));
      return true;
    }
  }
  return false;
}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::Erase(K key) {
  if (key == static_cast<K>(kEmptyKey)) return false;
  std::lock_guard<std::mutex> lock(writer_mu_);
  TableStore& st = store();
  std::uint64_t b;
  unsigned s;
  if (Locate(key, &b, &s)) {
    st.EpochEnterWrite();
    st.BumpOdd(b);
    table_.WriteSlot(b, s, static_cast<K>(kEmptyKey), V{});
    st.BumpEven(b);
    table_.AdjustSize(-1);
    st.EpochExitWrite();
    return true;
  }
  const unsigned stash_n = st.stash_count();
  for (unsigned i = 0; i < stash_n; ++i) {
    if (st.stash_at(i).key == static_cast<std::uint64_t>(key)) {
      // Swap-remove mutates entry `i` in place: readers validate against
      // the stash seqlock (scalar Find) or the write epoch (batches).
      st.EpochEnterWrite();
      st.StashVersion().fetch_add(1, std::memory_order_acq_rel);
      st.StashRemoveAt(i);
      st.StashVersion().fetch_add(1, std::memory_order_release);
      table_.AdjustSize(-1);
      st.EpochExitWrite();
      return true;
    }
  }
  return false;
}

template class ConcurrentCuckooTable<std::uint16_t, std::uint32_t>;
template class ConcurrentCuckooTable<std::uint32_t, std::uint32_t>;
template class ConcurrentCuckooTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht
