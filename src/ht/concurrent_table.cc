#include "ht/concurrent_table.h"

#include <vector>

namespace simdht {

template <typename K, typename V>
ConcurrentCuckooTable<K, V>::ConcurrentCuckooTable(
    unsigned ways, unsigned slots, std::uint64_t num_buckets,
    BucketLayout layout, std::uint64_t seed)
    : table_(ways, slots, num_buckets, layout, seed) {}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::Locate(K key, std::uint64_t* bucket,
                                         unsigned* slot) const {
  const LayoutSpec& spec = table_.spec();
  for (unsigned way = 0; way < spec.ways; ++way) {
    const std::uint32_t b = table_.hash_family().template Bucket<K>(way, key);
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (table_.KeyAt(b, s) == key) {
        *bucket = b;
        *slot = s;
        return true;
      }
    }
  }
  return false;
}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::Find(K key, V* val) const {
  const LayoutSpec& spec = table_.spec();
  const HashFamily& hash = table_.hash_family();
  const TableStore& st = store();
  std::uint32_t buckets[kMaxWays];
  for (unsigned w = 0; w < spec.ways; ++w) {
    buckets[w] = hash.template Bucket<K>(w, key);
  }

  for (;;) {
    std::uint64_t before[kMaxWays];
    bool writer_active = false;
    for (unsigned w = 0; w < spec.ways; ++w) {
      before[w] = st.StripeFor(buckets[w]).load(std::memory_order_acquire);
      writer_active |= (before[w] & 1) != 0;
    }
    if (writer_active) continue;

    V found_val{};
    bool found = false;
    for (unsigned w = 0; w < spec.ways && !found; ++w) {
      for (unsigned s = 0; s < spec.slots; ++s) {
        if (table_.KeyAt(buckets[w], s) == key) {
          found_val = table_.ValAt(buckets[w], s);
          found = true;
          break;
        }
      }
    }

    std::atomic_thread_fence(std::memory_order_acquire);
    bool stable = true;
    for (unsigned w = 0; w < spec.ways; ++w) {
      stable &= st.StripeFor(buckets[w]).load(std::memory_order_acquire) ==
                before[w];
    }
    if (stable) {
      if (found && val != nullptr) *val = found_val;
      return found;
    }
  }
}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::Insert(K key, V val) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  TableStore& st = store();

  // Overwrite in place if present.
  {
    std::uint64_t b;
    unsigned s;
    if (Locate(key, &b, &s)) {
      st.EpochEnterWrite();
      st.BumpOdd(b);
      table_.WriteSlot(b, s, key, val);
      st.BumpEven(b);
      st.EpochExitWrite();
      return true;
    }
  }

  // A BFS chain can, rarely, visit the same slot twice (a bucket cycle);
  // the replay detects that via per-move validation and the whole attempt
  // restarts on the mutated-but-consistent table.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int rc = InsertAttempt(key, val);
    if (rc >= 0) return rc != 0;
  }
  return false;
}

template <typename K, typename V>
int ConcurrentCuckooTable<K, V>::InsertAttempt(K key, V val) {
  const LayoutSpec& spec = table_.spec();
  const HashFamily& hash = table_.hash_family();
  TableStore& st = store();

  // BFS for the nearest bucket with an empty slot, rooted at the key's
  // candidate buckets. Nodes record how we reached them so the eviction
  // path can be replayed back-to-front.
  struct Node {
    std::uint32_t bucket;
    std::int32_t parent;   // index into nodes, -1 for roots
    std::uint16_t via_slot;  // slot in parent whose occupant leads here
  };
  std::vector<Node> nodes;
  nodes.reserve(kMaxBfsNodes);
  for (unsigned w = 0; w < spec.ways; ++w) {
    nodes.push_back({hash.template Bucket<K>(w, key), -1, 0});
  }

  std::int32_t goal = -1;
  unsigned goal_slot = 0;
  for (std::size_t head = 0; head < nodes.size() && goal < 0; ++head) {
    const std::uint32_t b = nodes[head].bucket;
    for (unsigned s = 0; s < spec.slots; ++s) {
      if (table_.KeyAt(b, s) == static_cast<K>(kEmptyKey)) {
        goal = static_cast<std::int32_t>(head);
        goal_slot = s;
        break;
      }
    }
    if (goal >= 0) break;
    if (nodes.size() >= kMaxBfsNodes) continue;  // stop expanding, drain
    for (unsigned s = 0; s < spec.slots && nodes.size() < kMaxBfsNodes;
         ++s) {
      const K occupant = table_.KeyAt(b, s);
      for (unsigned w = 0; w < spec.ways; ++w) {
        const std::uint32_t alt = hash.template Bucket<K>(w, occupant);
        if (alt == b) continue;
        nodes.push_back({alt, static_cast<std::int32_t>(head),
                         static_cast<std::uint16_t>(s)});
        if (nodes.size() >= kMaxBfsNodes) break;
      }
    }
  }
  if (goal < 0) return 0;  // no path within budget: table full

  // Replay the path back-to-front: move each evictee into the hole below
  // it, so every key is written to its destination before its source slot
  // is reused. Readers racing a move retry via the bumped stripes. Each
  // move is validated — if the chain aliased a slot (the occupant changed
  // under an earlier move of this very replay), abort; every completed
  // move left the table consistent, so the caller can simply retry.
  st.EpochEnterWrite();
  std::uint64_t hole_bucket = nodes[static_cast<std::size_t>(goal)].bucket;
  unsigned hole_slot = goal_slot;
  std::int32_t node = goal;
  bool aborted = false;
  while (nodes[static_cast<std::size_t>(node)].parent >= 0) {
    const Node& cur = nodes[static_cast<std::size_t>(node)];
    const std::uint32_t src_bucket =
        nodes[static_cast<std::size_t>(cur.parent)].bucket;
    const unsigned src_slot = cur.via_slot;
    const K moved_key = table_.KeyAt(src_bucket, src_slot);
    const V moved_val = table_.ValAt(src_bucket, src_slot);

    bool valid = moved_key != static_cast<K>(kEmptyKey);
    if (valid) {
      valid = false;
      for (unsigned w = 0; w < spec.ways; ++w) {
        valid |= hash.template Bucket<K>(w, moved_key) == hole_bucket;
      }
    }
    if (!valid) {
      aborted = true;
      break;
    }

    st.BumpOdd(hole_bucket);
    st.BumpOdd(src_bucket);
    table_.WriteSlot(hole_bucket, hole_slot, moved_key, moved_val);
    table_.WriteSlot(src_bucket, src_slot, static_cast<K>(kEmptyKey), V{});
    st.BumpEven(src_bucket);
    st.BumpEven(hole_bucket);
    hole_bucket = src_bucket;
    hole_slot = src_slot;
    node = cur.parent;
  }

  if (!aborted) {
    st.BumpOdd(hole_bucket);
    table_.WriteSlot(hole_bucket, hole_slot, key, val);
    st.BumpEven(hole_bucket);
    table_.AdjustSize(1);
  }
  st.EpochExitWrite();
  return aborted ? -1 : 1;
}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::UpdateValue(K key, V val) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  TableStore& st = store();
  std::uint64_t b;
  unsigned s;
  if (!Locate(key, &b, &s)) return false;
  st.BumpOdd(b);
  table_.WriteSlot(b, s, key, val);
  st.BumpEven(b);
  return true;
}

template <typename K, typename V>
bool ConcurrentCuckooTable<K, V>::Erase(K key) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  TableStore& st = store();
  std::uint64_t b;
  unsigned s;
  if (!Locate(key, &b, &s)) return false;
  st.EpochEnterWrite();
  st.BumpOdd(b);
  table_.WriteSlot(b, s, static_cast<K>(kEmptyKey), V{});
  st.BumpEven(b);
  table_.AdjustSize(-1);
  st.EpochExitWrite();
  return true;
}

template class ConcurrentCuckooTable<std::uint16_t, std::uint32_t>;
template class ConcurrentCuckooTable<std::uint32_t, std::uint32_t>;
template class ConcurrentCuckooTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht
