// Concurrent (N, m) cuckoo hash table: lock-free readers, locked writers.
//
// Generalizes MemC3's optimistic concurrency (Section II-B / [12]) from its
// fixed (2,4) tag table to every layout the suite supports:
//
//  * Readers never lock. Single-key Find snapshots striped seqlock versions
//    of all candidate buckets before and after probing and retries on a
//    change; batched lookups validate a global write epoch around each
//    kernel invocation.
//  * Writers serialize on a mutex. Inserts use BFS path-search: a read-only
//    search finds the shortest eviction path to an empty slot, then entries
//    move back-to-front — each key is written to its destination before its
//    source slot is overwritten, so a key is never absent mid-move (readers
//    may transiently see it twice, which is harmless).
//
// Like CuckooTable, this is a policy wrapper: the seqlock stripes and the
// write epoch it bumps are owned by the underlying TableStore
// (ht/table_store.h), not duplicated here — this class only adds the
// writer mutex and the BFS insertion/erase discipline.
//
// This is the substrate the paper's future work ("concurrent reads and
// updates") needs beyond in-place value updates: full inserts and erases
// racing with SIMD batch lookups.
#ifndef SIMDHT_HT_CONCURRENT_TABLE_H_
#define SIMDHT_HT_CONCURRENT_TABLE_H_

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "ht/cuckoo_table.h"

namespace simdht {

template <typename K, typename V>
class ConcurrentCuckooTable {
 public:
  ConcurrentCuckooTable(unsigned ways, unsigned slots,
                        std::uint64_t num_buckets, BucketLayout layout,
                        std::uint64_t seed = 0);

  // Adopts an already-built (e.g. deserialized) table.
  explicit ConcurrentCuckooTable(CuckooTable<K, V>&& table)
      : table_(std::move(table)) {}

  // Inserts or overwrites; false only when the table is genuinely full:
  // no eviction path within the BFS budget, overflow stash full, and
  // reseed-and-rebuild recovery exhausted. Key 0 (the empty-slot sentinel)
  // is rejected. Thread-safe vs readers and other writers.
  bool Insert(K key, V val);

  // Batched mutation surface (ht/mutation.h): takes the writer mutex once
  // for the whole batch, then runs the block-hash + write-prefetch + SIMD
  // scan fast path per key, reproducing exactly the seqlock/write-epoch
  // discipline the per-key path uses (duplicate overwrites bump only the
  // touched stripe; direct inserts bracket with the write epoch like a BFS
  // path of length one). Conflict keys fall back to the locked scalar core.
  // Bit-identical to the per-key Insert loop; safe vs concurrent readers.
  void BatchInsert(const MutationBatch<K, V>& batch);

  // Batched UpdateValue under one writer-mutex acquisition.
  void BatchUpdate(const MutationBatch<K, V>& batch);

  // Lock-free single-key lookup (candidate buckets, then overflow stash).
  bool Find(K key, V* val) const;

  // In-place value overwrite (seqlock-bumped); false if absent.
  bool UpdateValue(K key, V val);

  // Removes the key; thread-safe vs readers.
  bool Erase(K key);

  // Batched lookup through any lookup kernel (typically a lambda wrapping
  // KernelInfo::Lookup, or anything with the raw (view, keys, vals, found,
  // n) call shape), validated against the global write
  // epoch per chunk. Chunks that raced a structural writer are retried
  // with progressively smaller chunks; if the writer churns faster than
  // even a small chunk can validate, the chunk falls back to per-key
  // seqlock lookups — progress is always guaranteed.
  template <typename LookupCallable>
  std::uint64_t BatchLookup(LookupCallable&& lookup, const K* keys, V* vals,
                            std::uint8_t* found, std::size_t n) const {
    const TableStore& store = table_.store();
    constexpr std::size_t kMaxChunk = 512;
    constexpr int kRetriesPerSize = 2;
    std::uint64_t hits = 0;
    std::size_t off = 0;
    std::size_t chunk = kMaxChunk;
    while (off < n) {
      const std::size_t len = n - off < chunk ? n - off : chunk;
      bool done = false;
      for (std::size_t size = len; !done;) {
        int retries = kRetriesPerSize;
        while (retries-- > 0) {
          const std::uint64_t e0 = store.EpochBegin();
          if (e0 & 1) continue;  // structural write in flight
          // The view is re-captured per attempt: a rebuild recovery can
          // reseed the hash family and the stash grows/shrinks — a view
          // cached across the epoch check would probe stale buckets.
          const TableView batch_view = store.view();
          const std::uint64_t chunk_hits =
              lookup(batch_view, keys + off, vals + off, found + off, size);
          if (store.EpochValidate(e0)) {
            hits += chunk_hits;
            off += size;
            done = true;
            break;
          }
        }
        if (done) break;
        if (size > 32) {
          size /= 4;  // shrink: shorter window, better validation odds
          continue;
        }
        // Writer churn outpaces kernel validation: per-key seqlock path.
        for (std::size_t i = 0; i < size; ++i) {
          V value{};
          const bool ok = Find(keys[off + i], &value);
          vals[off + i] = ok ? value : V{0};
          found[off + i] = ok ? 1 : 0;
          hits += ok;
        }
        off += size;
        done = true;
      }
    }
    return hits;
  }

  std::uint64_t size() const { return table_.size(); }
  std::uint64_t capacity() const { return table_.capacity(); }
  double load_factor() const { return table_.load_factor(); }
  const LayoutSpec& spec() const { return table_.spec(); }
  TableView view() const { return table_.view(); }

  // The wrapped policy table (snapshots via ht/table_io.h). Callers must
  // not mutate it while readers are active.
  const CuckooTable<K, V>& table() const { return table_; }

  // --- insertion-engine knobs (forwarded to the wrapped table) ---
  void set_stash_capacity(unsigned cap) { table_.set_stash_capacity(cap); }
  unsigned stash_count() const { return table_.stash_count(); }
  void set_rebuild_enabled(bool enabled) {
    table_.set_rebuild_enabled(enabled);
  }
  const InsertStats& insert_stats() const { return table_.insert_stats(); }

  // BFS search budget (shared engine defaults, see CuckooTable).
  static constexpr unsigned kMaxBfsNodes = CuckooTable<K, V>::kMaxBfsNodes;

 private:
  TableStore& store() const {
    return const_cast<CuckooTable<K, V>&>(table_).store();
  }

  // Finds (bucket, slot) of `key`; returns false if absent. Writer-side
  // helper (no seqlock validation; caller holds the writer mutex).
  bool Locate(K key, std::uint64_t* bucket, unsigned* slot) const;

  // One BFS + replay attempt: 1 = inserted, 0 = table full,
  // -1 = replay aborted on a slot-aliased chain (caller retries).
  int InsertAttempt(K key, V val);

  // Insert core with writer_mu_ already held (shared by Insert and the
  // batched conflict tail).
  bool InsertLocked(K key, V val);

  CuckooTable<K, V> table_;
  std::vector<PathStep> path_;
  std::mutex writer_mu_;
};

using ConcurrentCuckooTable32 =
    ConcurrentCuckooTable<std::uint32_t, std::uint32_t>;
using ConcurrentCuckooTable64 =
    ConcurrentCuckooTable<std::uint64_t, std::uint64_t>;

extern template class ConcurrentCuckooTable<std::uint16_t, std::uint32_t>;
extern template class ConcurrentCuckooTable<std::uint32_t, std::uint32_t>;
extern template class ConcurrentCuckooTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht

#endif  // SIMDHT_HT_CONCURRENT_TABLE_H_
