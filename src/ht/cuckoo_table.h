// Runtime-configurable (N, m) cuckoo hash table.
//
// One class covers every variant the paper evaluates: non-bucketized N-way
// cuckoo tables (m = 1, Fig 1a) and bucketized cuckoo hash tables (m > 1,
// Fig 1b), in interleaved or split bucket layout, over 16/32/64-bit keys.
//
// This is a *policy* class: all storage concerns (bucket arena, shape
// resolution, seqlock stripes, TableView construction) live in the shared
// TableStore (ht/table_store.h); CuckooTable only decides what to write.
// Inserts run the shared BFS path-search engine (ht/path_search.h) by
// default — shortest eviction chain, read-only search, so a failed insert
// makes zero writes — with the legacy bounded random walk kept behind
// InsertPolicy for apples-to-apples comparison (bench/micro_insert_path).
// When no path exists the key spills to a small overflow stash, and when
// even the stash is full a reseed-and-rebuild recovery pass re-inserts the
// whole table under a fresh hash family before Insert reports failure.
// Lookups through the class are the scalar reference; SIMD batch lookups go
// through the kernel registry using view().
#ifndef SIMDHT_HT_CUCKOO_TABLE_H_
#define SIMDHT_HT_CUCKOO_TABLE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "common/compiler.h"
#include "common/random.h"
#include "ht/mutation.h"
#include "ht/path_search.h"
#include "ht/table_store.h"

namespace simdht {

// How Insert finds a slot when every candidate is occupied.
enum class InsertPolicy : std::uint8_t {
  kBfs = 0,         // shortest eviction chain (default)
  kRandomWalk = 1,  // bounded random walk (MemC3/CuckooSwitch heritage)
};

const char* InsertPolicyName(InsertPolicy policy);

// Writer-side insertion counters (racy reads are fine for reporting).
struct InsertStats {
  std::uint64_t direct_inserts = 0;  // empty candidate slot, no eviction
  std::uint64_t path_inserts = 0;    // placed via an eviction chain
  std::uint64_t path_moves = 0;      // total entries displaced by chains
  std::uint64_t walk_kicks = 0;      // random-walk displacements
  std::uint64_t stash_inserts = 0;   // spilled to the overflow stash
  std::uint64_t rebuilds = 0;        // successful reseed-and-rebuild passes
  std::uint64_t failed_inserts = 0;  // Insert() returned false
};

// K in {uint16_t, uint32_t, uint64_t}; V in {uint32_t, uint64_t}.
template <typename K, typename V>
class CuckooTable {
 public:
  // `num_buckets` is rounded up to a power of two (>= 2).
  // `seed` randomizes hash multipliers and the eviction walk; seed 0 gives
  // the deterministic default family.
  CuckooTable(unsigned ways, unsigned slots, std::uint64_t num_buckets,
              BucketLayout layout, std::uint64_t seed = 0);

  CuckooTable(CuckooTable&&) noexcept = default;
  CuckooTable& operator=(CuckooTable&&) noexcept = default;

  // Inserts or overwrites. Key 0 is the empty-slot sentinel and is rejected
  // (returns false) — in every build mode, not just under assert. Returns
  // false only when the table is genuinely full for this key set: no
  // eviction path within the BFS budget, stash full, and rebuild recovery
  // (if enabled) could not place everything under a fresh seed. A failed
  // Insert leaves the table contents bit-identical.
  bool Insert(K key, V val);

  // Batched mutation surface (ht/mutation.h). Bit-identical to calling
  // Insert(keys[i], vals[i]) in batch order — same table bytes, stash,
  // stats and ok results — but the chunk is block-hashed, its candidate
  // buckets write-prefetched, and each bucket SIMD-scanned once for both
  // the duplicate and the first empty slot. Only keys whose candidates are
  // all full (or that collide structurally) fall back to the scalar core.
  void BatchInsert(const MutationBatch<K, V>& batch);

  // Batched UpdateValue: ok[i] = key present (value overwritten in place).
  void BatchUpdate(const MutationBatch<K, V>& batch);

  // Scalar reference lookup (the paper's "Scalar" baseline inner step).
  // Probes the candidate buckets, then the overflow stash.
  bool Find(K key, V* val) const;

  // Overwrites the value of an existing key without any cuckoo relocation.
  // Returns false if the key is absent. Because the key never moves and the
  // value is a single aligned word, this is safe to run concurrently with
  // readers (they observe either the old or the new value) — the primitive
  // behind the mixed read/update workloads of Section VII's future work.
  bool UpdateValue(K key, V val);

  // Removes the key if present (buckets or stash).
  bool Erase(K key);

  // Entries currently stored / storable. Stash entries count toward size()
  // (they are stored and findable) but not capacity(), so a stashed table
  // reports the load factor it actually serves.
  std::uint64_t size() const { return store_.size(); }
  std::uint64_t capacity() const {
    return store_.num_buckets() * store_.spec().slots;
  }
  double load_factor() const {
    return static_cast<double>(size()) / static_cast<double>(capacity());
  }

  std::uint64_t num_buckets() const { return store_.num_buckets(); }
  const LayoutSpec& spec() const { return store_.spec(); }
  std::uint64_t table_bytes() const { return store_.table_bytes(); }

  // --- insertion-engine knobs ---
  InsertPolicy insert_policy() const { return insert_policy_; }
  void set_insert_policy(InsertPolicy policy) { insert_policy_ = policy; }
  void set_stash_capacity(unsigned cap) { store_.set_stash_capacity(cap); }
  unsigned stash_count() const { return store_.stash_count(); }
  bool rebuild_enabled() const { return rebuild_enabled_; }
  void set_rebuild_enabled(bool enabled) { rebuild_enabled_ = enabled; }
  const InsertStats& insert_stats() const { return stats_; }
  // Writer-side mutable access for wrappers that implement their own
  // insertion discipline (ConcurrentCuckooTable).
  InsertStats& mutable_insert_stats() { return stats_; }

  // Read-only view for lookup kernels.
  TableView view() const { return store_.view(); }

  // The storage layer: wrappers that add their own concurrency discipline
  // (ConcurrentCuckooTable) reach the shared seqlock stripes and write
  // epoch through here instead of owning duplicates.
  TableStore& store() { return store_; }
  const TableStore& store() const { return store_; }

  // Snapshot support (ht/table_io.h): raw bucket storage and hash family.
  const std::uint8_t* raw_data() const { return store_.data(); }
  std::uint8_t* raw_data_mutable() { return store_.data(); }
  const HashFamily& hash_family() const { return store_.hash(); }
  // Adopts deserialized state after the caller filled raw_data_mutable().
  void RestoreState(const HashFamily& hash, std::uint64_t size,
                    std::uint64_t seed) {
    store_.Restore(hash, size, seed);
  }

  // Advanced: direct slot write + occupancy adjustment, for wrappers that
  // implement their own insertion discipline (ConcurrentCuckooTable's
  // BFS path-moves). Does not maintain the occupancy count.
  void WriteSlot(std::uint64_t bucket, unsigned slot, K key, V val) {
    store_.SetSlot(bucket, slot, key, val);
  }
  void AdjustSize(std::int64_t delta) { store_.AdjustSize(delta); }

  // Raw slot access for tests and for the insert path.
  K KeyAt(std::uint64_t bucket, unsigned slot) const {
    return store_.KeyAt<K>(bucket, slot);
  }
  V ValAt(std::uint64_t bucket, unsigned slot) const {
    return store_.ValAt<V>(bucket, slot);
  }

  // Read-only BFS for the shortest eviction chain placing `key`; fills
  // `path` root-first (path[0] receives the key, path.back() is an empty
  // slot). Shared with ConcurrentCuckooTable, which replays the path under
  // its own seqlock discipline. Writer-side (uses per-table scratch).
  bool FindInsertionPath(K key, std::vector<PathStep>* path);

  // Rebuild recovery (Porat & Shalem-style): re-inserts every stored entry
  // plus (key, val) into a staging table under freshly derived seeds.
  // Returns the staging table on success; nullopt when every candidate
  // seed failed, in which case further rebuilds are suppressed until
  // entries are erased. The live table is never touched — callers publish
  // via AdoptRebuilt (under their own concurrency discipline if needed).
  std::optional<CuckooTable<K, V>> BuildRecoveryTable(K key, V val);

  // Publishes a staging table built by BuildRecoveryTable into this
  // table's existing arena (shape-identical by construction), adopting its
  // hash family, seed, size and stash. Concurrent wrappers bracket this
  // with the write epoch + all stripes odd.
  void AdoptRebuilt(const CuckooTable<K, V>& staging);

  // Maximum eviction-walk length before a kRandomWalk insert gives up.
  static constexpr unsigned kMaxKicks = 512;
  // BFS budget: buckets examined / chain-length cap (see PathSearchLimits).
  static constexpr unsigned kMaxBfsNodes = 1024;
  static constexpr unsigned kMaxBfsDepth = 256;
  // Fresh seeds tried per rebuild recovery before declaring the table full.
  static constexpr unsigned kMaxRebuildAttempts = 4;

 private:
  std::uint32_t BucketOf(unsigned way, K key) const {
    return store_.Bucket<K>(way, key);
  }

  bool InsertBfs(K key, V val);
  bool InsertRandomWalk(K key, V val);
  bool TryRebuild(K key, V val);

  TableStore store_;
  Xoshiro256 walk_rng_;
  PathSearchScratch scratch_;
  std::vector<PathStep> path_;
  InsertStats stats_;
  InsertPolicy insert_policy_ = InsertPolicy::kBfs;
  bool rebuild_enabled_ = true;
  // Occupancy at which the last rebuild failed; retrying below that size
  // can succeed (entries were erased), at or above it cannot.
  std::uint64_t rebuild_blocked_size_ = UINT64_MAX;
};

using CuckooTable16x32 = CuckooTable<std::uint16_t, std::uint32_t>;
using CuckooTable32 = CuckooTable<std::uint32_t, std::uint32_t>;
using CuckooTable64 = CuckooTable<std::uint64_t, std::uint64_t>;

extern template class CuckooTable<std::uint16_t, std::uint32_t>;
extern template class CuckooTable<std::uint32_t, std::uint32_t>;
extern template class CuckooTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht

#endif  // SIMDHT_HT_CUCKOO_TABLE_H_
