// Runtime-configurable (N, m) cuckoo hash table.
//
// One class covers every variant the paper evaluates: non-bucketized N-way
// cuckoo tables (m = 1, Fig 1a) and bucketized cuckoo hash tables (m > 1,
// Fig 1b), in interleaved or split bucket layout, over 16/32/64-bit keys.
//
// This is a *policy* class: all storage concerns (bucket arena, shape
// resolution, seqlock stripes, TableView construction) live in the shared
// TableStore (ht/table_store.h); CuckooTable only decides what to write —
// random-walk cuckoo eviction on insert (the approach MemC3 and
// CuckooSwitch use). Lookups through the class are the scalar reference;
// SIMD batch lookups go through the kernel registry using view().
#ifndef SIMDHT_HT_CUCKOO_TABLE_H_
#define SIMDHT_HT_CUCKOO_TABLE_H_

#include <cstdint>
#include <cstring>
#include <optional>

#include "common/compiler.h"
#include "common/random.h"
#include "ht/table_store.h"

namespace simdht {

// K in {uint16_t, uint32_t, uint64_t}; V in {uint32_t, uint64_t}.
template <typename K, typename V>
class CuckooTable {
 public:
  // `num_buckets` is rounded up to a power of two (>= 2).
  // `seed` randomizes hash multipliers and the eviction walk; seed 0 gives
  // the deterministic default family.
  CuckooTable(unsigned ways, unsigned slots, std::uint64_t num_buckets,
              BucketLayout layout, std::uint64_t seed = 0);

  CuckooTable(CuckooTable&&) noexcept = default;
  CuckooTable& operator=(CuckooTable&&) noexcept = default;

  // Inserts or overwrites. Returns false when the random-walk eviction gives
  // up (table effectively full for this key set) — the insert is rolled
  // forward, i.e. some *other* key/value may have moved buckets but no entry
  // is ever lost on failure except the one reported.
  bool Insert(K key, V val);

  // Scalar reference lookup (the paper's "Scalar" baseline inner step).
  bool Find(K key, V* val) const;

  // Overwrites the value of an existing key without any cuckoo relocation.
  // Returns false if the key is absent. Because the key never moves and the
  // value is a single aligned word, this is safe to run concurrently with
  // readers (they observe either the old or the new value) — the primitive
  // behind the mixed read/update workloads of Section VII's future work.
  bool UpdateValue(K key, V val);

  // Removes the key if present.
  bool Erase(K key);

  // Entries currently stored / storable.
  std::uint64_t size() const { return store_.size(); }
  std::uint64_t capacity() const {
    return store_.num_buckets() * store_.spec().slots;
  }
  double load_factor() const {
    return static_cast<double>(size()) / static_cast<double>(capacity());
  }

  std::uint64_t num_buckets() const { return store_.num_buckets(); }
  const LayoutSpec& spec() const { return store_.spec(); }
  std::uint64_t table_bytes() const { return store_.table_bytes(); }

  // Read-only view for lookup kernels.
  TableView view() const { return store_.view(); }

  // The storage layer: wrappers that add their own concurrency discipline
  // (ConcurrentCuckooTable) reach the shared seqlock stripes and write
  // epoch through here instead of owning duplicates.
  TableStore& store() { return store_; }
  const TableStore& store() const { return store_; }

  // Snapshot support (ht/table_io.h): raw bucket storage and hash family.
  const std::uint8_t* raw_data() const { return store_.data(); }
  std::uint8_t* raw_data_mutable() { return store_.data(); }
  const HashFamily& hash_family() const { return store_.hash(); }
  // Adopts deserialized state after the caller filled raw_data_mutable().
  void RestoreState(const HashFamily& hash, std::uint64_t size) {
    store_.Restore(hash, size);
  }

  // Advanced: direct slot write + occupancy adjustment, for wrappers that
  // implement their own insertion discipline (ConcurrentCuckooTable's
  // BFS path-moves). Does not maintain the occupancy count.
  void WriteSlot(std::uint64_t bucket, unsigned slot, K key, V val) {
    store_.SetSlot(bucket, slot, key, val);
  }
  void AdjustSize(std::int64_t delta) { store_.AdjustSize(delta); }

  // Raw slot access for tests and for the insert path.
  K KeyAt(std::uint64_t bucket, unsigned slot) const {
    return store_.KeyAt<K>(bucket, slot);
  }
  V ValAt(std::uint64_t bucket, unsigned slot) const {
    return store_.ValAt<V>(bucket, slot);
  }

  // Maximum eviction-walk length before Insert() reports failure.
  static constexpr unsigned kMaxKicks = 512;

 private:
  std::uint32_t BucketOf(unsigned way, K key) const {
    return store_.Bucket<K>(way, key);
  }

  TableStore store_;
  Xoshiro256 walk_rng_;
};

using CuckooTable16x32 = CuckooTable<std::uint16_t, std::uint32_t>;
using CuckooTable32 = CuckooTable<std::uint32_t, std::uint32_t>;
using CuckooTable64 = CuckooTable<std::uint64_t, std::uint64_t>;

extern template class CuckooTable<std::uint16_t, std::uint32_t>;
extern template class CuckooTable<std::uint32_t, std::uint32_t>;
extern template class CuckooTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht

#endif  // SIMDHT_HT_CUCKOO_TABLE_H_
