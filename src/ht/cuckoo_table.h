// Runtime-configurable (N, m) cuckoo hash table.
//
// One class covers every variant the paper evaluates: non-bucketized N-way
// cuckoo tables (m = 1, Fig 1a) and bucketized cuckoo hash tables (m > 1,
// Fig 1b), in interleaved or split bucket layout, over 16/32/64-bit keys.
//
// Inserts use random-walk cuckoo eviction (the approach MemC3 and
// CuckooSwitch use); lookups through the class are the scalar reference —
// SIMD batch lookups go through the kernel registry using view().
#ifndef SIMDHT_HT_CUCKOO_TABLE_H_
#define SIMDHT_HT_CUCKOO_TABLE_H_

#include <cstdint>
#include <cstring>
#include <optional>

#include "common/aligned_buffer.h"
#include "common/compiler.h"
#include "common/random.h"
#include "ht/layout.h"

namespace simdht {

// K in {uint16_t, uint32_t, uint64_t}; V in {uint32_t, uint64_t}.
template <typename K, typename V>
class CuckooTable {
 public:
  // `num_buckets` is rounded up to a power of two (>= 2).
  // `seed` randomizes hash multipliers and the eviction walk; seed 0 gives
  // the deterministic default family.
  CuckooTable(unsigned ways, unsigned slots, std::uint64_t num_buckets,
              BucketLayout layout, std::uint64_t seed = 0);

  CuckooTable(CuckooTable&&) noexcept = default;
  CuckooTable& operator=(CuckooTable&&) noexcept = default;

  // Inserts or overwrites. Returns false when the random-walk eviction gives
  // up (table effectively full for this key set) — the insert is rolled
  // forward, i.e. some *other* key/value may have moved buckets but no entry
  // is ever lost on failure except the one reported.
  bool Insert(K key, V val);

  // Scalar reference lookup (the paper's "Scalar" baseline inner step).
  bool Find(K key, V* val) const;

  // Overwrites the value of an existing key without any cuckoo relocation.
  // Returns false if the key is absent. Because the key never moves and the
  // value is a single aligned word, this is safe to run concurrently with
  // readers (they observe either the old or the new value) — the primitive
  // behind the mixed read/update workloads of Section VII's future work.
  bool UpdateValue(K key, V val);

  // Removes the key if present.
  bool Erase(K key);

  // Entries currently stored / storable.
  std::uint64_t size() const { return size_; }
  std::uint64_t capacity() const { return num_buckets_ * spec_.slots; }
  double load_factor() const {
    return static_cast<double>(size_) / static_cast<double>(capacity());
  }

  std::uint64_t num_buckets() const { return num_buckets_; }
  const LayoutSpec& spec() const { return spec_; }
  std::uint64_t table_bytes() const {
    return num_buckets_ * spec_.bucket_bytes();
  }

  // Read-only view for lookup kernels.
  TableView view() const;

  // Snapshot support (ht/table_io.h): raw bucket storage and hash family.
  const std::uint8_t* raw_data() const { return storage_.data(); }
  std::uint8_t* raw_data_mutable() { return storage_.data(); }
  const HashFamily& hash_family() const { return hash_; }
  // Adopts deserialized state after the caller filled raw_data_mutable().
  void RestoreState(const HashFamily& hash, std::uint64_t size) {
    hash_ = hash;
    size_ = size;
  }

  // Advanced: direct slot write + occupancy adjustment, for wrappers that
  // implement their own insertion discipline (ConcurrentCuckooTable's
  // BFS path-moves). Does not maintain the occupancy count.
  void WriteSlot(std::uint64_t bucket, unsigned slot, K key, V val) {
    SetSlot(bucket, slot, key, val);
  }
  void AdjustSize(std::int64_t delta) {
    size_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(size_) + delta);
  }

  // Raw slot access for tests and for the insert path.
  K KeyAt(std::uint64_t bucket, unsigned slot) const;
  V ValAt(std::uint64_t bucket, unsigned slot) const;

  // Maximum eviction-walk length before Insert() reports failure.
  static constexpr unsigned kMaxKicks = 512;

 private:
  void SetSlot(std::uint64_t bucket, unsigned slot, K key, V val);

  std::uint8_t* key_addr(std::uint64_t b, unsigned s);
  const std::uint8_t* key_addr(std::uint64_t b, unsigned s) const;
  std::uint8_t* val_addr(std::uint64_t b, unsigned s);
  const std::uint8_t* val_addr(std::uint64_t b, unsigned s) const;

  std::uint32_t BucketOf(unsigned way, K key) const {
    return hash_.Bucket<K>(way, key);
  }

  LayoutSpec spec_;
  std::uint64_t num_buckets_ = 0;
  unsigned log2_buckets_ = 0;
  HashFamily hash_;
  AlignedBuffer storage_;
  std::uint64_t size_ = 0;
  Xoshiro256 walk_rng_;
};

using CuckooTable16x32 = CuckooTable<std::uint16_t, std::uint32_t>;
using CuckooTable32 = CuckooTable<std::uint32_t, std::uint32_t>;
using CuckooTable64 = CuckooTable<std::uint64_t, std::uint64_t>;

extern template class CuckooTable<std::uint16_t, std::uint32_t>;
extern template class CuckooTable<std::uint32_t, std::uint32_t>;
extern template class CuckooTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht

#endif  // SIMDHT_HT_CUCKOO_TABLE_H_
