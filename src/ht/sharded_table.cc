#include "ht/sharded_table.h"

namespace simdht {

template <typename K, typename V>
ShardedTable<K, V>::ShardedTable(unsigned shards, unsigned ways,
                                 unsigned slots,
                                 std::uint64_t num_buckets_total,
                                 BucketLayout layout, std::uint64_t seed) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedTable: shard count must be >= 1");
  }
  // Ceil-divide so the sharded table never has less total capacity than the
  // unsharded one the caller sized for.
  const std::uint64_t per_shard =
      (num_buckets_total + shards - 1) / shards;
  shards_.reserve(shards);
  shard_seeds_.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    const std::uint64_t shard_seed = SeedForShard(seed, s);
    shards_.push_back(std::make_unique<ConcurrentCuckooTable<K, V>>(
        ways, slots, per_shard, layout, shard_seed));
    shard_seeds_.push_back(shard_seed);
  }
}

template <typename K, typename V>
ShardedTable<K, V>::ShardedTable(std::vector<CuckooTable<K, V>>&& shard_tables,
                                 std::vector<std::uint64_t> shard_seeds)
    : shard_seeds_(std::move(shard_seeds)) {
  if (shard_tables.empty()) {
    throw std::invalid_argument("ShardedTable: no shards to adopt");
  }
  if (shard_tables.size() != shard_seeds_.size()) {
    throw std::invalid_argument(
        "ShardedTable: shard/seed count mismatch");
  }
  shards_.reserve(shard_tables.size());
  for (auto& t : shard_tables) {
    shards_.push_back(
        std::make_unique<ConcurrentCuckooTable<K, V>>(std::move(t)));
  }
}

template class ShardedTable<std::uint16_t, std::uint32_t>;
template class ShardedTable<std::uint32_t, std::uint32_t>;
template class ShardedTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht
