// TableStore: the one storage layer under every table family.
//
// Before this layer existed, CuckooTable, ConcurrentCuckooTable and
// Memc3Table each reimplemented bucket-arena allocation, (N, m) shape
// resolution, striped seqlock versions and TableView construction. The
// kernels were already layout-generic (any kernel probes any TableView), so
// the storage underneath is hoisted here exactly once and the table classes
// become policy wrappers: they decide *what* to write (insert/eviction
// discipline), TableStore decides *where bytes live* and how readers
// validate them.
//
// A store resolves a TableShape (validated layout + power-of-two bucket
// count + bucket stride), owns the aligned/hugepage bucket arena
// (common/aligned_buffer.h), the striped seqlock version counters and the
// global write epoch that optimistic readers validate against, and builds
// the TableView the SIMD kernels consume. Raw-shaped stores (Memc3's
// tag+handle buckets) skip the LayoutSpec and view but share everything
// else.
#ifndef SIMDHT_HT_TABLE_STORE_H_
#define SIMDHT_HT_TABLE_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>

#include "common/aligned_buffer.h"
#include "common/compiler.h"
#include "hash/hash_family.h"
#include "ht/layout.h"

namespace simdht {

// Resolved table geometry: the step every table constructor used to
// duplicate. `For` validates the LayoutSpec and rounds the bucket count to
// a power of two >= 2; `Raw` does the same rounding for a caller-defined
// bucket record (no LayoutSpec semantics, no TableView).
struct TableShape {
  LayoutSpec spec;                 // meaningful only when !raw
  std::uint64_t num_buckets = 0;   // power of two, >= 2
  unsigned log2_buckets = 0;
  std::uint32_t bucket_bytes = 0;  // arena stride
  bool raw = false;

  // Throws std::invalid_argument on an invalid spec.
  static TableShape For(const LayoutSpec& spec, std::uint64_t min_buckets);
  static TableShape Raw(std::uint64_t min_buckets,
                        std::uint32_t bucket_bytes);

  std::uint64_t total_bytes() const {
    return num_buckets * static_cast<std::uint64_t>(bucket_bytes);
  }
};

class TableStore {
 public:
  // Stripe count shared by every optimistic-concurrency table (MemC3 uses
  // 2048); versions are allocated per store, never per policy class.
  static constexpr unsigned kVersionStripes = 1 << 11;

  // `seed` randomizes the hash family (seed 0 = deterministic defaults);
  // `hash_kind` picks its scalar hash (wyhash is Swiss-family-only, see
  // hash_family.h). Layouts whose family declares a metadata lane get a
  // second arena of one control byte per slot, pre-filled with the lane's
  // empty sentinel and tailed by kMetaMirrorBytes of cyclic mirror.
  TableStore(const TableShape& shape, std::uint64_t seed,
             HashKind hash_kind = HashKind::kMultiplyShift);

  TableStore(TableStore&&) noexcept = default;
  TableStore& operator=(TableStore&&) noexcept = default;

  // --- shape / layout ---
  const TableShape& shape() const { return shape_; }
  const LayoutSpec& spec() const { return shape_.spec; }
  std::uint64_t num_buckets() const { return shape_.num_buckets; }
  unsigned log2_buckets() const { return shape_.log2_buckets; }
  std::uint32_t bucket_stride() const { return shape_.bucket_bytes; }
  std::uint64_t table_bytes() const { return shape_.total_bytes(); }

  // --- bucket arena ---
  std::uint8_t* data() { return arena_.data(); }
  const std::uint8_t* data() const { return arena_.data(); }
  template <typename T>
  T* as() { return arena_.as<T>(); }
  template <typename T>
  const T* as() const { return arena_.as<T>(); }

  // --- hash family ---
  const HashFamily& hash() const { return hash_; }
  template <typename K>
  std::uint32_t Bucket(unsigned way, K key) const {
    return hash_.Bucket<K>(way, key);
  }

  // The seed the current hash family was derived from. Starts at the
  // constructor seed; a rebuild recovery (CuckooTable::TryRebuild) moves it.
  // Snapshots persist this so seed-vs-multiplier validation keeps working
  // after a rebuild.
  std::uint64_t seed() const { return seed_; }

  // Re-derives the hash family from `seed`, keeping the hash kind (rebuild
  // recovery / snapshot load). Writer-side only. SIMDHT_NO_TSAN: a
  // concurrent reader may load multipliers mid-store, compute a
  // wrong-but-in-range bucket, and retry via the stripe/epoch validation —
  // the same protocol as slot stores.
  SIMDHT_NO_TSAN void Reseed(std::uint64_t seed) {
    hash_ = HashFamily::Make(shape_.log2_buckets, seed, hash_.kind);
    seed_ = seed;
  }

  // --- occupancy (maintained by the policy layer) ---
  std::uint64_t size() const { return size_; }
  void AdjustSize(std::int64_t delta) {
    size_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(size_) +
                                       delta);
  }

  // Adopts deserialized state (ht/table_io.h) after the caller filled
  // data() with snapshot bytes.
  void Restore(const HashFamily& hash, std::uint64_t size,
               std::uint64_t seed) {
    hash_ = hash;
    size_ = size;
    seed_ = seed;
  }

  // Overwrites the whole arena from `src` (shape-identical staging table).
  // The rebuild publication step: caller brackets this with EpochEnterWrite
  // + BumpAllOdd so no reader validates against half-copied bytes.
  // SIMDHT_NO_TSAN for the same reason as SetSlot.
  SIMDHT_NO_TSAN void AdoptArena(const std::uint8_t* src) {
    std::memcpy(arena_.data(), src, shape_.total_bytes());
  }
  void SetSize(std::uint64_t n) { size_ = n; }

  // --- typed slot addressing (LayoutSpec-shaped stores only) ---
  // Key/value addresses for (bucket, slot) under either bucket layout.
  std::uint8_t* key_addr(std::uint64_t b, unsigned s) {
    const LayoutSpec& spec = shape_.spec;
    std::uint8_t* base = arena_.data() + b * shape_.bucket_bytes;
    if (spec.bucket_layout == BucketLayout::kInterleaved) {
      return base + static_cast<std::size_t>(s) * spec.slot_bytes();
    }
    return base + static_cast<std::size_t>(s) * spec.key_bytes();
  }
  const std::uint8_t* key_addr(std::uint64_t b, unsigned s) const {
    return const_cast<TableStore*>(this)->key_addr(b, s);
  }
  std::uint8_t* val_addr(std::uint64_t b, unsigned s) {
    const LayoutSpec& spec = shape_.spec;
    if (spec.bucket_layout == BucketLayout::kInterleaved) {
      return key_addr(b, s) + spec.key_bytes();
    }
    std::uint8_t* base = arena_.data() + b * shape_.bucket_bytes;
    return base + static_cast<std::size_t>(spec.slots) * spec.key_bytes() +
           static_cast<std::size_t>(s) * spec.val_bytes();
  }
  const std::uint8_t* val_addr(std::uint64_t b, unsigned s) const {
    return const_cast<TableStore*>(this)->val_addr(b, s);
  }

  // Slot accesses carry SIMDHT_NO_TSAN: optimistic readers race these
  // stores by design and retry via the stripe versions / write epoch below,
  // a protocol TSan cannot see through.
  template <typename K>
  SIMDHT_NO_TSAN K KeyAt(std::uint64_t b, unsigned s) const {
    K k;
    std::memcpy(&k, key_addr(b, s), sizeof(K));
    return k;
  }
  template <typename V>
  SIMDHT_NO_TSAN V ValAt(std::uint64_t b, unsigned s) const {
    V v;
    std::memcpy(&v, val_addr(b, s), sizeof(V));
    return v;
  }
  template <typename K, typename V>
  SIMDHT_NO_TSAN void SetSlot(std::uint64_t b, unsigned s, K key, V val) {
    std::memcpy(key_addr(b, s), &key, sizeof(K));
    std::memcpy(val_addr(b, s), &val, sizeof(V));
  }
  // In-place value overwrite: a single aligned word store, safe against
  // concurrent readers (they observe old or new).
  template <typename V>
  SIMDHT_NO_TSAN void SetVal(std::uint64_t b, unsigned s, V val) {
    std::memcpy(val_addr(b, s), &val, sizeof(V));
  }

  // --- metadata lane (families with MetaLaneSpec::present(), i.e. Swiss) ---
  // One control byte per slot (slot = bucket * spec.slots + s) plus a
  // kMetaMirrorBytes cyclic mirror of the lane start, so wide vector loads
  // at any group offset stay in-bounds. Control mutators carry
  // SIMDHT_NO_TSAN like the slot stores: optimistic readers race them and
  // retry via the stripe/epoch machinery.
  bool has_meta() const { return meta_.data() != nullptr; }
  std::uint64_t num_slots() const {
    return shape_.num_buckets * (shape_.raw ? 0 : shape_.spec.slots);
  }
  std::uint64_t meta_bytes() const { return num_slots() + kMetaMirrorBytes; }
  const std::uint8_t* meta_data() const { return meta_.data(); }
  SIMDHT_NO_TSAN std::uint8_t CtrlAt(std::uint64_t slot) const {
    return meta_.data()[slot];
  }
  // Stores a control byte and keeps the mirror tail coherent. For lanes
  // shorter than the mirror the tail repeats the lane cyclically, so the
  // stride loop writes every copy.
  SIMDHT_NO_TSAN void SetCtrl(std::uint64_t slot, std::uint8_t ctrl) {
    std::uint8_t* lane = meta_.data();
    lane[slot] = ctrl;
    const std::uint64_t slots = num_slots();
    for (std::uint64_t mirror = slot + slots; mirror < slots + kMetaMirrorBytes;
         mirror += slots) {
      lane[mirror] = ctrl;
    }
  }
  // Adopts `num_slots()` snapshot control bytes and rebuilds the mirror
  // (table_io restore; bracketed by the caller like AdoptArena).
  SIMDHT_NO_TSAN void AdoptMeta(const std::uint8_t* src) {
    std::uint8_t* lane = meta_.data();
    const std::uint64_t slots = num_slots();
    std::memcpy(lane, src, slots);
    for (std::uint64_t i = 0; i < kMetaMirrorBytes; ++i) {
      lane[slots + i] = lane[i % slots];
    }
  }

  // Read-only view for the lookup kernels (LayoutSpec-shaped stores only).
  TableView view() const;

  // --- optimistic-read machinery ---
  // Striped seqlock versions: writers bump the stripe of every bucket they
  // mutate to odd before the write and back to even after; readers snapshot
  // before/after probing and retry on change.
  std::atomic<std::uint64_t>& StripeFor(std::uint64_t bucket) const {
    return versions_[bucket & (kVersionStripes - 1)];
  }
  void BumpOdd(std::uint64_t bucket) {
    StripeFor(bucket).fetch_add(1, std::memory_order_acq_rel);
  }
  void BumpEven(std::uint64_t bucket) {
    StripeFor(bucket).fetch_add(1, std::memory_order_release);
  }

  // Every stripe to odd / back to even: brackets whole-arena mutations
  // (rebuild publication) the per-bucket bumps cannot cover.
  void BumpAllOdd() {
    for (unsigned i = 0; i < kVersionStripes; ++i) {
      versions_[i].fetch_add(1, std::memory_order_acq_rel);
    }
  }
  void BumpAllEven() {
    for (unsigned i = 0; i < kVersionStripes; ++i) {
      versions_[i].fetch_add(1, std::memory_order_release);
    }
  }

  // Global write epoch for batched lookups: odd while a structural write
  // (relocation, erase) is in flight; a batch that observed the same even
  // value before and after a kernel invocation is valid.
  std::uint64_t EpochBegin() const {
    return epoch().load(std::memory_order_acquire);
  }
  bool EpochValidate(std::uint64_t e0) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return epoch().load(std::memory_order_acquire) == e0;
  }
  void EpochEnterWrite() { epoch().fetch_add(1, std::memory_order_acq_rel); }
  void EpochExitWrite() { epoch().fetch_add(1, std::memory_order_release); }

  // --- overflow stash ---
  // Fixed-size stash the policy layer spills to when no eviction path
  // exists. Entries are widened to 64-bit (see StashEntry). The count is
  // published with release semantics so an append is reader-safe without
  // any version bump; in-place mutation (swap-remove) needs the seqlock
  // below. The mutators carry SIMDHT_NO_TSAN like the slot stores: readers
  // race them by design and retry via StashVersion / the write epoch.
  unsigned stash_capacity() const { return stash_capacity_; }
  void set_stash_capacity(unsigned cap) {
    stash_capacity_ = cap < kMaxStashEntries ? cap : kMaxStashEntries;
  }
  unsigned stash_count() const {
    return static_cast<unsigned>(
        stash_count_slot().load(std::memory_order_acquire));
  }
  SIMDHT_NO_TSAN StashEntry stash_at(unsigned i) const { return stash_[i]; }
  SIMDHT_NO_TSAN bool StashAppend(std::uint64_t key, std::uint64_t val) {
    const unsigned n = stash_count();
    if (n >= stash_capacity_) return false;
    stash_[n].val = val;
    stash_[n].key = key;
    stash_count_slot().store(n + 1, std::memory_order_release);
    return true;
  }
  // Single aligned word store: readers observe old or new.
  SIMDHT_NO_TSAN void StashSetVal(unsigned i, std::uint64_t val) {
    stash_[i].val = val;
  }
  // Swap-remove. Mutates entry `i` in place — callers with concurrent
  // readers bracket this with StashVersion odd/even and the write epoch.
  SIMDHT_NO_TSAN void StashRemoveAt(unsigned i) {
    const unsigned n = stash_count();
    stash_[i] = stash_[n - 1];
    stash_count_slot().store(n - 1, std::memory_order_release);
  }
  void StashClear() {
    stash_count_slot().store(0, std::memory_order_release);
  }
  // Seqlock guarding in-place stash mutation, validated by optimistic
  // readers alongside the bucket stripes.
  std::atomic<std::uint64_t>& StashVersion() const {
    return versions_[kVersionStripes + 1];
  }

 private:
  // The epoch, the stash seqlock and the stash count share the version
  // allocation (slots kVersionStripes .. +2) so the store stays movable —
  // a bare std::atomic member would delete the move operations CuckooTable
  // and table_io depend on.
  std::atomic<std::uint64_t>& epoch() const {
    return versions_[kVersionStripes];
  }
  std::atomic<std::uint64_t>& stash_count_slot() const {
    return versions_[kVersionStripes + 2];
  }

  TableShape shape_;
  HashFamily hash_;
  AlignedBuffer arena_;
  AlignedBuffer meta_;  // control-byte lane; unallocated for cuckoo shapes
  std::uint64_t size_ = 0;
  std::uint64_t seed_ = 0;
  StashEntry stash_[kMaxStashEntries];
  unsigned stash_capacity_ = kDefaultStashCapacity;
  mutable std::unique_ptr<std::atomic<std::uint64_t>[]> versions_;
};

}  // namespace simdht

#endif  // SIMDHT_HT_TABLE_STORE_H_
