// MemC3-style (2,4) bucketized cuckoo hash table (Fan et al., NSDI'13).
//
// This is the paper's non-SIMD CPU-optimized baseline for the key-value
// store use case (Section VI): each bucket holds four slots of a 1-byte
// partial-key "tag" plus an 8-byte item handle (Table I row 1: 4 x (1 B, 8 B),
// 2-way). Tags let lookups skip full-key comparison for non-matching slots,
// and let cuckoo displacement move entries without rehashing the full key
// (the alternate bucket is derived from the tag).
//
// Concurrency follows MemC3's optimistic scheme: readers snapshot a striped
// version counter before and after probing and retry on a torn read;
// writers serialize on a mutex and bump the counters around displacements.
//
// Storage (bucket arena, power-of-two shape resolution, seqlock stripes)
// comes from a raw-shaped TableStore (ht/table_store.h) — the same layer
// under CuckooTable — leaving only the tag/displacement policy here.
#ifndef SIMDHT_HT_MEMC3_TABLE_H_
#define SIMDHT_HT_MEMC3_TABLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/compiler.h"
#include "hash/hash_family.h"
#include "ht/path_search.h"
#include "ht/table_store.h"

namespace simdht {

class Memc3Table {
 public:
  static constexpr unsigned kSlotsPerBucket = 4;
  static constexpr unsigned kWays = 2;
  // Overflow-stash capacity: entries whose eviction search failed. Smaller
  // than the full-key tables' default because a tag table cannot rebuild
  // itself (hashes are not recoverable from tags), so the stash is the only
  // recovery tier and stays deliberately tiny.
  static constexpr unsigned kStashCapacity = 4;
  // 2 buckets x 4 slots of possible tag matches, plus stash entries.
  static constexpr unsigned kMaxCandidates =
      kWays * kSlotsPerBucket + kStashCapacity;

  // How candidate tags are scanned. MemC3 proper scans them scalar; kSse
  // compares all 8 tags of both candidate buckets in one 128-bit op — the
  // Cuckoo++/F14-style upgrade, useful to isolate how much of the SIMD
  // backends' win is mere tag scanning (it is not much; the ablation lives
  // in fig11's --simd-tags mode).
  enum class TagMatch : std::uint8_t { kScalar = 0, kSse = 1 };

  // `num_buckets` rounded up to a power of two (>= 2).
  explicit Memc3Table(std::uint64_t num_buckets, std::uint64_t seed = 0,
                      TagMatch tag_match = TagMatch::kScalar);

  // Inserts an item handle under the 64-bit key hash. The caller is
  // responsible for ensuring the same full key is not inserted twice
  // (do a Find + update first — that is what the KVS backend does).
  // Placement runs the shared BFS path-search engine (shortest eviction
  // chain); when no path exists the (tag, item) pair spills to the
  // overflow stash. Returns false only when the stash is full too — a
  // partial-key table has no rebuild tier (see kStashCapacity).
  bool Insert(std::uint64_t hash, std::uint64_t item);

  // Batched insert: one writer-mutex acquisition for the whole batch, a
  // sliding write-prefetch window over upcoming candidate buckets, and a
  // SWAR first-empty-tag fast path per key (a BFS path of length one, with
  // its exact version-bump publication). Keys whose candidate buckets are
  // both full fall back to the locked BFS/stash core. ok[i] (optional)
  // mirrors what Insert(hashes[i], items[i]) would have returned; the final
  // table state is bit-identical to the per-key loop.
  void BatchInsert(const std::uint64_t* hashes, const std::uint64_t* items,
                   std::uint8_t* ok, std::size_t n);

  // Collects item handles whose tag matches `hash` from both candidate
  // buckets and the overflow stash into out[kMaxCandidates]; returns the
  // count. The caller must
  // verify the full key behind each handle (tags are 8-bit, ~1/256 false
  // positive per occupied slot). Safe to call concurrently with one writer.
  unsigned FindCandidates(std::uint64_t hash,
                          std::uint64_t out[kMaxCandidates]) const;

  // Prefetches both candidate buckets of `hash` into L2 — the group-prefetch
  // stage of a batched Multi-Get, issued one mini-batch ahead of the
  // FindCandidates calls that will touch the same buckets.
  void PrefetchCandidates(std::uint64_t hash) const;

  // Removes the slot holding `item` under `hash`; returns true if found.
  bool Erase(std::uint64_t hash, std::uint64_t item);

  std::uint64_t size() const { return store_.size(); }
  std::uint64_t capacity() const {
    return store_.num_buckets() * kSlotsPerBucket;
  }
  double load_factor() const {
    return static_cast<double>(size()) / static_cast<double>(capacity());
  }
  std::uint64_t num_buckets() const { return store_.num_buckets(); }
  std::uint64_t table_bytes() const { return store_.table_bytes(); }

  // True when `item` currently sits in the overflow stash (as opposed to a
  // bucket slot). Monitoring accessor: the read is racy-tolerant and not
  // seqlock-validated, so a concurrent writer can yield a stale answer —
  // callers must not use it for control flow.
  bool StashContains(std::uint64_t item) const;

 private:
  // One bucket = 4 tags + 4 item handles; 40 bytes, packed so two buckets
  // straddle at most two cache lines (MemC3 keeps buckets cache-friendly).
  struct Bucket {
    std::uint8_t tags[kSlotsPerBucket];
    std::uint32_t pad;
    std::uint64_t items[kSlotsPerBucket];
  };
  static_assert(sizeof(Bucket) == 40);

  std::uint32_t IndexHash(std::uint64_t hash) const {
    return static_cast<std::uint32_t>(hash) & bucket_mask_;
  }
  // Partial-key alternate bucket: depends only on (bucket, tag) so entries
  // can be displaced without the full key.
  std::uint32_t AltBucket(std::uint32_t bucket, std::uint8_t tag) const {
    return (bucket ^ (static_cast<std::uint32_t>(tag) * 0x5BD1E995u)) &
           bucket_mask_;
  }

  std::atomic<std::uint64_t>& VersionFor(std::uint32_t bucket) const {
    return store_.StripeFor(bucket);
  }

  // Insert core with writer_mu_ already held (shared by Insert and the
  // batched conflict tail).
  bool InsertLocked(std::uint64_t hash, std::uint64_t item);

  // Write-hint twin of PrefetchCandidates for the batched insert window.
  void PrefetchCandidatesForWrite(std::uint64_t hash) const {
    const std::uint8_t tag = Tag8(hash);
    const std::uint32_t b1 = IndexHash(hash);
    const std::uint32_t b2 = AltBucket(b1, tag);
    __builtin_prefetch(&buckets_[b1], 1, 3);
    __builtin_prefetch(reinterpret_cast<const std::uint8_t*>(&buckets_[b1]) +
                           sizeof(Bucket) - 1, 1, 3);
    __builtin_prefetch(&buckets_[b2], 1, 3);
    __builtin_prefetch(reinterpret_cast<const std::uint8_t*>(&buckets_[b2]) +
                           sizeof(Bucket) - 1, 1, 3);
  }

  // Collects tag matches from one bucket into out[]; returns new count.
  // SIMDHT_NO_TSAN: readers race the slot stores by design and retry via
  // the stripe versions (optimistic concurrency TSan cannot see through).
  SIMDHT_NO_TSAN unsigned ScanBucket(const Bucket& bucket, std::uint8_t tag,
                                     std::uint64_t* out,
                                     unsigned count) const;

  // The one slot-mutation point, bracketed by the caller's version bumps;
  // un-instrumented for the same reason as ScanBucket.
  SIMDHT_NO_TSAN static void StoreEntry(Bucket& bucket, unsigned slot,
                                        std::uint8_t tag,
                                        std::uint64_t item) {
    bucket.tags[slot] = tag;
    bucket.items[slot] = item;
  }

  TableStore store_;
  Bucket* buckets_;
  std::uint32_t bucket_mask_;
  TagMatch tag_match_ = TagMatch::kScalar;
  PathSearchScratch scratch_;
  std::vector<PathStep> path_;
  std::mutex writer_mu_;

  // BFS budget: a (2,4) tag table has fan-out 4, so any reachable empty
  // slot surfaces within a few hundred buckets.
  static constexpr unsigned kMaxBfsNodes = 512;
  static constexpr unsigned kMaxBfsDepth = 64;
};

}  // namespace simdht

#endif  // SIMDHT_HT_MEMC3_TABLE_H_
