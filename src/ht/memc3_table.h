// MemC3-style (2,4) bucketized cuckoo hash table (Fan et al., NSDI'13).
//
// This is the paper's non-SIMD CPU-optimized baseline for the key-value
// store use case (Section VI): each bucket holds four slots of a 1-byte
// partial-key "tag" plus an 8-byte item handle (Table I row 1: 4 x (1 B, 8 B),
// 2-way). Tags let lookups skip full-key comparison for non-matching slots,
// and let cuckoo displacement move entries without rehashing the full key
// (the alternate bucket is derived from the tag).
//
// Concurrency follows MemC3's optimistic scheme: readers snapshot a striped
// version counter before and after probing and retry on a torn read;
// writers serialize on a mutex and bump the counters around displacements.
#ifndef SIMDHT_HT_MEMC3_TABLE_H_
#define SIMDHT_HT_MEMC3_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/aligned_buffer.h"
#include "common/compiler.h"
#include "common/random.h"

namespace simdht {

class Memc3Table {
 public:
  static constexpr unsigned kSlotsPerBucket = 4;
  static constexpr unsigned kWays = 2;
  // 2 buckets x 4 slots of possible tag matches.
  static constexpr unsigned kMaxCandidates = kWays * kSlotsPerBucket;

  // How candidate tags are scanned. MemC3 proper scans them scalar; kSse
  // compares all 8 tags of both candidate buckets in one 128-bit op — the
  // Cuckoo++/F14-style upgrade, useful to isolate how much of the SIMD
  // backends' win is mere tag scanning (it is not much; the ablation lives
  // in fig11's --simd-tags mode).
  enum class TagMatch : std::uint8_t { kScalar = 0, kSse = 1 };

  // `num_buckets` rounded up to a power of two (>= 2).
  explicit Memc3Table(std::uint64_t num_buckets, std::uint64_t seed = 0,
                      TagMatch tag_match = TagMatch::kScalar);

  // Inserts an item handle under the 64-bit key hash. The caller is
  // responsible for ensuring the same full key is not inserted twice
  // (do a Find + update first — that is what the KVS backend does).
  // Returns false when the eviction walk fails (table full).
  bool Insert(std::uint64_t hash, std::uint64_t item);

  // Collects item handles whose tag matches `hash` from both candidate
  // buckets into out[kMaxCandidates]; returns the count. The caller must
  // verify the full key behind each handle (tags are 8-bit, ~1/256 false
  // positive per occupied slot). Safe to call concurrently with one writer.
  unsigned FindCandidates(std::uint64_t hash,
                          std::uint64_t out[kMaxCandidates]) const;

  // Prefetches both candidate buckets of `hash` into L2 — the group-prefetch
  // stage of a batched Multi-Get, issued one mini-batch ahead of the
  // FindCandidates calls that will touch the same buckets.
  void PrefetchCandidates(std::uint64_t hash) const;

  // Removes the slot holding `item` under `hash`; returns true if found.
  bool Erase(std::uint64_t hash, std::uint64_t item);

  std::uint64_t size() const { return size_; }
  std::uint64_t capacity() const { return num_buckets_ * kSlotsPerBucket; }
  double load_factor() const {
    return static_cast<double>(size_) / static_cast<double>(capacity());
  }
  std::uint64_t num_buckets() const { return num_buckets_; }
  std::uint64_t table_bytes() const { return storage_.size(); }

 private:
  // One bucket = 4 tags + 4 item handles; 40 bytes, packed so two buckets
  // straddle at most two cache lines (MemC3 keeps buckets cache-friendly).
  struct Bucket {
    std::uint8_t tags[kSlotsPerBucket];
    std::uint32_t pad;
    std::uint64_t items[kSlotsPerBucket];
  };
  static_assert(sizeof(Bucket) == 40);

  static constexpr unsigned kVersionStripes = 1 << 11;  // MemC3 uses 2048

  std::uint32_t IndexHash(std::uint64_t hash) const {
    return static_cast<std::uint32_t>(hash) & bucket_mask_;
  }
  // Partial-key alternate bucket: depends only on (bucket, tag) so entries
  // can be displaced without the full key.
  std::uint32_t AltBucket(std::uint32_t bucket, std::uint8_t tag) const {
    return (bucket ^ (static_cast<std::uint32_t>(tag) * 0x5BD1E995u)) &
           bucket_mask_;
  }

  std::atomic<std::uint64_t>& VersionFor(std::uint32_t bucket) const {
    return versions_[bucket & (kVersionStripes - 1)];
  }

  // Collects tag matches from one bucket into out[]; returns new count.
  unsigned ScanBucket(const Bucket& bucket, std::uint8_t tag,
                      std::uint64_t* out, unsigned count) const;

  Bucket* buckets_;
  AlignedBuffer storage_;
  std::uint64_t num_buckets_;
  std::uint32_t bucket_mask_;
  TagMatch tag_match_ = TagMatch::kScalar;
  std::uint64_t size_ = 0;
  Xoshiro256 walk_rng_;
  mutable std::unique_ptr<std::atomic<std::uint64_t>[]> versions_;
  std::mutex writer_mu_;

  static constexpr unsigned kMaxKicks = 512;
};

}  // namespace simdht

#endif  // SIMDHT_HT_MEMC3_TABLE_H_
