// Table population utilities: fill to a target load factor, or probe the
// maximum achievable load factor of a layout (reproduces Fig 2).
#ifndef SIMDHT_HT_TABLE_BUILDER_H_
#define SIMDHT_HT_TABLE_BUILDER_H_

#include <cstdint>
#include <vector>

#include "ht/cuckoo_table.h"
#include "ht/sharded_table.h"

namespace simdht {

// Result of building a table.
template <typename K>
struct BuildResult {
  std::vector<K> inserted_keys;  // in insertion order; values are key-derived
  double achieved_load_factor = 0.0;
  bool hit_capacity = false;     // an insert failed before the target LF
};

// Fills `table` with unique random non-zero keys until load_factor >=
// `target_lf` (or an insert fails). The value stored for key k is
// DeriveVal(k) so lookup kernels can be verified without a shadow map.
template <typename K, typename V>
BuildResult<K> FillToLoadFactor(CuckooTable<K, V>* table, double target_lf,
                                std::uint64_t seed = 1);

// Sharded variant: every key is routed to its shard by the table itself, so
// the built distribution is exactly what the shard router will probe.
// `target_lf` applies to the aggregate capacity.
template <typename K, typename V>
BuildResult<K> FillToLoadFactor(ShardedTable<K, V>* table, double target_lf,
                                std::uint64_t seed = 1);

// The value every builder stores for a key: a cheap key-derived stamp that
// fits any value width (tests recompute it to check kernel results).
template <typename K, typename V>
inline V DeriveVal(K key) {
  return static_cast<V>(static_cast<std::uint64_t>(key) * 2654435761ULL + 1);
}

// Inserts random keys until the eviction walk fails; returns the load factor
// reached. This is the paper's Fig 2 measurement for one (N, m) point.
template <typename K, typename V>
double MeasureMaxLoadFactor(unsigned ways, unsigned slots,
                            std::uint64_t num_buckets, BucketLayout layout,
                            std::uint64_t seed = 1);

// Generates `count` unique random keys, none equal to the empty sentinel and
// none colliding with `exclude` (used to build guaranteed-miss key sets).
template <typename K>
std::vector<K> UniqueRandomKeys(std::size_t count, std::uint64_t seed,
                                const std::vector<K>* exclude = nullptr);

}  // namespace simdht

#endif  // SIMDHT_HT_TABLE_BUILDER_H_
