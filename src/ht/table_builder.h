// Table population utilities: fill to a target load factor, or probe the
// maximum achievable load factor of a layout (reproduces Fig 2).
#ifndef SIMDHT_HT_TABLE_BUILDER_H_
#define SIMDHT_HT_TABLE_BUILDER_H_

#include <cstdint>
#include <vector>

#include "ht/cuckoo_table.h"
#include "ht/sharded_table.h"
#include "ht/swiss_table.h"

namespace simdht {

// Result of building a table.
template <typename K>
struct BuildResult {
  std::vector<K> inserted_keys;  // in insertion order; values are key-derived
  double achieved_load_factor = 0.0;
  bool hit_capacity = false;     // the target LF was not reached
  // Insert() calls that returned false across the whole fill (first pass,
  // retry pass and top-up). Lets callers distinguish "one unlucky
  // placement" (failed_inserts > 0 but target reached) from "table full"
  // (hit_capacity).
  std::uint64_t failed_inserts = 0;
};

// Fills `table` with unique random non-zero keys until load_factor >=
// `target_lf`. The value stored for key k is DeriveVal(k) so lookup
// kernels can be verified without a shadow map.
//
// A failed insert no longer aborts the fill: the pass continues through the
// remaining keys, failed keys get one retry pass (later placements can open
// paths for them), and if the target is still short, fresh replacement keys
// top the table up until the target is met or insertions stop making
// progress. hit_capacity is therefore a statement about the table, not
// about one unlucky eviction walk.
template <typename K, typename V>
BuildResult<K> FillToLoadFactor(CuckooTable<K, V>* table, double target_lf,
                                std::uint64_t seed = 1);

// Sharded variant: every key is routed to its shard by the table itself, so
// the built distribution is exactly what the shard router will probe.
// `target_lf` applies to the aggregate capacity.
template <typename K, typename V>
BuildResult<K> FillToLoadFactor(ShardedTable<K, V>* table, double target_lf,
                                std::uint64_t seed = 1);

// Swiss-family variant: identical fill discipline (open addressing has no
// placement luck to retry, but the shared pass structure keeps key streams
// comparable across families for the three-way figures).
template <typename K, typename V>
BuildResult<K> FillToLoadFactor(SwissTable<K, V>* table, double target_lf,
                                std::uint64_t seed = 1);

// The classic saturation process (Fig 2): inserts a fixed stream of unique
// random keys until the table reports a final insert failure, then stops.
// With the path-search engine a single Insert() == false already means the
// engine exhausted eviction paths, the stash and rebuilds — so the stopping
// load factor is the layout's max achievable occupancy for that seed.
//
// This is deliberately NOT FillToLoadFactor(target=1.0): the top-up pass
// there replaces failed keys with fresh draws, which adaptively selects an
// insertable key set and packs (2,1) tables far beyond the ~0.5
// orientability threshold. Saturation keeps the offered stream fixed so the
// measurement matches the paper's process. hit_capacity is always true.
template <typename K, typename V>
BuildResult<K> FillToSaturation(CuckooTable<K, V>* table,
                                std::uint64_t seed = 1);

// The value every builder stores for a key: a cheap key-derived stamp that
// fits any value width (tests recompute it to check kernel results).
template <typename K, typename V>
inline V DeriveVal(K key) {
  return static_cast<V>(static_cast<std::uint64_t>(key) * 2654435761ULL + 1);
}

// Max-load-factor measurement across a seed set. One seed's outcome is a
// sample of placement luck, not a property of the layout; the median over a
// few seeds is stable run-to-run and min/max expose the spread (layout-
// profile tables report median, plots can show the band).
struct LoadFactorSpread {
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> samples;  // per-seed achieved max LF, sorted
};

// Fills a fresh table to saturation once per seed (table seed and key seed
// both varied) and reports the spread. This is the paper's Fig 2
// measurement for one (N, m) point.
template <typename K, typename V>
LoadFactorSpread MeasureMaxLoadFactorSpread(unsigned ways, unsigned slots,
                                            std::uint64_t num_buckets,
                                            BucketLayout layout,
                                            std::uint64_t seed = 1,
                                            unsigned num_seeds = 5);

// Median of a small default seed set (see MeasureMaxLoadFactorSpread).
template <typename K, typename V>
double MeasureMaxLoadFactor(unsigned ways, unsigned slots,
                            std::uint64_t num_buckets, BucketLayout layout,
                            std::uint64_t seed = 1);

// Generates `count` unique random keys, none equal to the empty sentinel and
// none colliding with `exclude` (used to build guaranteed-miss key sets).
template <typename K>
std::vector<K> UniqueRandomKeys(std::size_t count, std::uint64_t seed,
                                const std::vector<K>* exclude = nullptr);

}  // namespace simdht

#endif  // SIMDHT_HT_TABLE_BUILDER_H_
