#include "ht/mutation.h"

#include <algorithm>
#include <cstring>

namespace simdht {

namespace {

// Providers queued before the registry builds; function-local so static
// initializers in other TUs can register regardless of init order (the same
// discipline as src/simd/registry.cc).
struct ProviderQueue {
  std::vector<MutationKernelProviderFn> providers;
  bool drained = false;
};

ProviderQueue& Queue() {
  static ProviderQueue queue;
  return queue;
}

// Scalar twins: locate keys through the TableView accessors, so one
// template serves both bucket layouts and every value width.
template <typename K>
BucketScan ScalarBucketScan(const TableView& view, std::uint64_t b,
                            std::uint64_t key) {
  BucketScan r;
  const K probe = static_cast<K>(key);
  const unsigned slots = view.spec.slots;
  for (unsigned s = 0; s < slots; ++s) {
    K k;
    std::memcpy(&k, view.key_ptr(b, s), sizeof(K));
    if (r.match_slot < 0 && k == probe) r.match_slot = static_cast<int>(s);
    if (r.empty_slot < 0 && k == static_cast<K>(kEmptyKey)) {
      r.empty_slot = static_cast<int>(s);
    }
  }
  return r;
}

GroupScan ScalarGroupScan(const std::uint8_t* ctrl, std::uint8_t h2) {
  GroupScan r;
  for (unsigned s = 0; s < kSwissGroupSlots; ++s) {
    const std::uint8_t c = ctrl[s];
    if (c == h2) r.match_mask |= 1u << s;
    if (c == kCtrlEmpty) r.empty_mask |= 1u << s;
    if (c == kCtrlEmpty || c == kCtrlTombstone) r.free_mask |= 1u << s;
  }
  return r;
}

MutationKernel ScalarCuckoo(const char* name, unsigned key_bits,
                            BucketScanFn fn) {
  MutationKernel k;
  k.name = name;
  k.family = TableFamily::kCuckoo;
  k.level = SimdLevel::kScalar;
  k.key_bits = key_bits;
  k.bucket_scan = fn;
  return k;
}

}  // namespace

void AppendScalarMutationKernels(std::vector<MutationKernel>* out) {
  out->push_back(
      ScalarCuckoo("MutScan-Scalar/k16", 16, &ScalarBucketScan<std::uint16_t>));
  out->push_back(
      ScalarCuckoo("MutScan-Scalar/k32", 32, &ScalarBucketScan<std::uint32_t>));
  out->push_back(
      ScalarCuckoo("MutScan-Scalar/k64", 64, &ScalarBucketScan<std::uint64_t>));
  MutationKernel swiss;
  swiss.name = "MutScan-Scalar/ctrl";
  swiss.family = TableFamily::kSwiss;
  swiss.level = SimdLevel::kScalar;
  swiss.group_scan = &ScalarGroupScan;
  out->push_back(swiss);
}

bool RegisterMutationKernelProvider(MutationKernelProviderFn provider) {
  ProviderQueue& queue = Queue();
  if (queue.drained) return false;
  if (std::find(queue.providers.begin(), queue.providers.end(), provider) ==
      queue.providers.end()) {
    queue.providers.push_back(provider);
  }
  return true;
}

MutationRegistry::MutationRegistry() {
  // Hard-referenced built-ins first (scalar twins, then per-ISA scans), so
  // selection can prefer the highest tier without ordering surprises.
  AppendScalarMutationKernels(&kernels_);
  AppendSseMutationKernels(&kernels_);
  AppendAvx2MutationKernels(&kernels_);
  ProviderQueue& queue = Queue();
  queue.drained = true;
  std::vector<MutationKernel> batch;
  for (MutationKernelProviderFn provider : queue.providers) {
    batch.clear();
    provider(&batch);
    for (MutationKernel& k : batch) kernels_.push_back(k);
  }
}

const MutationRegistry& MutationRegistry::Get() {
  static const MutationRegistry registry;
  return registry;
}

const MutationKernel* MutationRegistry::ForCuckoo(
    const LayoutSpec& spec) const {
  const CpuFeatures& cpu = GetCpuFeatures();
  const MutationKernel* best = nullptr;
  for (const MutationKernel& k : kernels_) {
    if (!k.MatchesCuckoo(spec)) continue;
    if (!cpu.Supports(k.level)) continue;
    if (best == nullptr || k.level > best->level) best = &k;
  }
  return best;
}

const MutationKernel* MutationRegistry::ForSwiss() const {
  const CpuFeatures& cpu = GetCpuFeatures();
  const MutationKernel* best = nullptr;
  for (const MutationKernel& k : kernels_) {
    if (k.family != TableFamily::kSwiss || k.group_scan == nullptr) continue;
    if (!cpu.Supports(k.level)) continue;
    if (best == nullptr || k.level > best->level) best = &k;
  }
  return best;
}

const MutationKernel* MutationRegistry::ByName(const std::string& name) const {
  for (const MutationKernel& k : kernels_) {
    if (name == k.name) return &k;
  }
  return nullptr;
}

}  // namespace simdht
