// ShardedTable<K, V>: P independent concurrent cuckoo shards behind one
// table interface — the partitioned storage layer a serving-grade KVS needs
// (Cuckoo++; "Scalable Hash Table for NUMA Systems").
//
// Each shard is a ConcurrentCuckooTable over its own TableStore (own
// arena, own hash-family seed, own writer lock, own seqlock stripes and
// write epoch), so structural writes in one shard never invalidate batched
// readers in another. Keys route to shards through one Mix64 avalanche
// (ShardRouterHash) — the same randomization the KVS consistent-hash ring
// applies to its server points — folded into [0, P) with a multiply-shift
// (no modulo, any P, not just powers of two). The router hash is
// independent of the in-shard multiply-shift bucket hash, so sharding does
// not skew per-shard bucket distribution.
//
// Batched lookups partition the probe stream by shard (one counting-sort
// pass), run the caller-supplied lookup — typically a SIMD kernel via
// KernelInfo::Lookup or the prefetch pipeline — per shard against that
// shard's TableView, then scatter results back into probe order. The
// kernels and the pipeline stay shard-oblivious: each invocation sees one
// plain TableView and a contiguous slice of keys.
#ifndef SIMDHT_HT_SHARDED_TABLE_H_
#define SIMDHT_HT_SHARDED_TABLE_H_

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ht/concurrent_table.h"

namespace simdht {

// The shard-router randomization: one full-avalanche Mix64. Shared with the
// KVS consistent-hash ring (src/kvs/consistent_hash.cc), so in-process
// shards and cross-server partitions agree on how key material is
// scrambled before placement.
SIMDHT_ALWAYS_INLINE std::uint64_t ShardRouterHash(std::uint64_t x) {
  return Mix64(x);
}

// Folds a router hash into [0, shards): multiply-shift "fastrange" on the
// high 32 bits, uniform for any shard count.
SIMDHT_ALWAYS_INLINE std::uint32_t ShardIndexOf(std::uint64_t router_hash,
                                                unsigned shards) {
  return static_cast<std::uint32_t>(((router_hash >> 32) * shards) >> 32);
}

// Derives shard `shard`'s hash-family seed from the table-level seed.
// Shard 0 keeps the caller's seed verbatim — a 1-shard table is
// hash-identical to an unsharded table built with the same seed — and every
// other shard mixes in the shard index so it probes with independent
// multipliers.
inline std::uint64_t ShardSeedFor(std::uint64_t seed, unsigned shard) {
  return shard == 0
             ? seed
             : ShardRouterHash(seed + 0x9E3779B97F4A7C15ULL * (shard + 1));
}

template <typename K, typename V>
class ShardedTable {
 public:
  // `num_buckets_total` is split evenly across shards (each shard rounds to
  // a power of two >= 2). Shard 0 uses `seed` verbatim — so a 1-shard table
  // is hash-identical to an unsharded table built with the same seed — and
  // every other shard derives an independent seed from it.
  ShardedTable(unsigned shards, unsigned ways, unsigned slots,
               std::uint64_t num_buckets_total, BucketLayout layout,
               std::uint64_t seed = 0);

  // Adopts deserialized per-shard tables (ht/table_io.h).
  ShardedTable(std::vector<CuckooTable<K, V>>&& shard_tables,
               std::vector<std::uint64_t> shard_seeds);

  static std::uint32_t ShardOf(K key, unsigned shards) {
    return ShardIndexOf(ShardRouterHash(static_cast<std::uint64_t>(key)),
                        shards);
  }
  static std::uint64_t SeedForShard(std::uint64_t seed, unsigned shard) {
    return ShardSeedFor(seed, shard);
  }

  // --- single-key operations (routed, thread-safe per shard) ---
  bool Insert(K key, V val) { return shard_for(key).Insert(key, val); }
  bool Find(K key, V* val) const { return shard_for(key).Find(key, val); }
  bool UpdateValue(K key, V val) {
    return shard_for(key).UpdateValue(key, val);
  }
  bool Erase(K key) { return shard_for(key).Erase(key); }

  // --- batched lookup ---
  // Partitions keys[0..n) by shard, runs `lookup` (any callable with the
  // raw (view, keys, vals, found, n) shape) per shard through that shard's
  // epoch-validated BatchLookup, and scatters results back into probe
  // order. With one shard this is a zero-copy pass-through, so results are
  // bit-identical to the unsharded path.
  template <typename LookupCallable>
  std::uint64_t BatchLookup(LookupCallable&& lookup, const K* keys, V* vals,
                            std::uint8_t* found, std::size_t n) const {
    const auto shards = static_cast<unsigned>(shards_.size());
    if (shards == 1) {
      return shards_[0]->BatchLookup(lookup, keys, vals, found, n);
    }

    // Counting sort by shard: one routing pass, one scatter, then a
    // contiguous per-shard slice for the kernel.
    std::vector<std::uint32_t> shard_of(n);
    std::vector<std::size_t> offsets(shards + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      shard_of[i] = ShardOf(keys[i], shards);
      ++offsets[shard_of[i] + 1];
    }
    for (unsigned s = 0; s < shards; ++s) offsets[s + 1] += offsets[s];

    std::vector<K> keys_by_shard(n);
    std::vector<std::size_t> perm(n);  // position in shard order -> probe i
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos = cursor[shard_of[i]]++;
      keys_by_shard[pos] = keys[i];
      perm[pos] = i;
    }

    std::vector<V> vals_by_shard(n);
    std::vector<std::uint8_t> found_by_shard(n);
    std::uint64_t hits = 0;
    for (unsigned s = 0; s < shards; ++s) {
      const std::size_t off = offsets[s];
      const std::size_t len = offsets[s + 1] - off;
      if (len == 0) continue;
      hits += shards_[s]->BatchLookup(lookup, keys_by_shard.data() + off,
                                      vals_by_shard.data() + off,
                                      found_by_shard.data() + off, len);
    }

    for (std::size_t pos = 0; pos < n; ++pos) {
      vals[perm[pos]] = vals_by_shard[pos];
      found[perm[pos]] = found_by_shard[pos];
    }
    return hits;
  }

  // --- batched mutation ---
  // Partitions the batch by shard (same counting sort as BatchLookup, which
  // is stable within a shard — per-shard key order is batch order, so each
  // shard's outcome is bit-identical to routing the keys one at a time),
  // then runs each shard's batched engine over its contiguous slice. With
  // one shard this is a zero-copy pass-through.
  void BatchInsert(const MutationBatch<K, V>& batch) {
    BatchMutate(batch, /*insert=*/true);
  }
  void BatchUpdate(const MutationBatch<K, V>& batch) {
    BatchMutate(batch, /*insert=*/false);
  }

  // --- aggregates ---
  std::uint64_t size() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->size();
    return total;
  }
  std::uint64_t capacity() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->capacity();
    return total;
  }
  double load_factor() const {
    const std::uint64_t cap = capacity();
    return cap ? static_cast<double>(size()) / static_cast<double>(cap) : 0.0;
  }
  std::uint64_t table_bytes() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->table().table_bytes();
    return total;
  }

  unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }
  const LayoutSpec& spec() const { return shards_[0]->spec(); }
  ConcurrentCuckooTable<K, V>& shard(unsigned i) { return *shards_[i]; }
  const ConcurrentCuckooTable<K, V>& shard(unsigned i) const {
    return *shards_[i];
  }
  // The seed shard `i`'s hash family is *currently* derived from — read
  // from the live store, not the construction-time record, because a
  // rebuild recovery reseeds a shard in place (snapshots validate seed
  // against stored multipliers, so a stale answer would poison them).
  std::uint64_t shard_seed(unsigned i) const {
    return shards_[i]->table().store().seed();
  }

  // Per-shard insertion counters, one entry per shard — the write-path
  // twin of KvBackend::ShardProbeStats (reports surface both the aggregate
  // and the per-shard skew).
  std::vector<InsertStats> ShardInsertStats() const {
    std::vector<InsertStats> out;
    out.reserve(shards_.size());
    for (const auto& s : shards_) out.push_back(s->insert_stats());
    return out;
  }

  // Aggregated insertion counters across shards.
  InsertStats insert_stats() const {
    InsertStats total;
    for (const auto& s : shards_) {
      const InsertStats& st = s->insert_stats();
      total.direct_inserts += st.direct_inserts;
      total.path_inserts += st.path_inserts;
      total.path_moves += st.path_moves;
      total.walk_kicks += st.walk_kicks;
      total.stash_inserts += st.stash_inserts;
      total.rebuilds += st.rebuilds;
      total.failed_inserts += st.failed_inserts;
    }
    return total;
  }

 private:
  void BatchMutate(const MutationBatch<K, V>& batch, bool insert) {
    const auto shards = static_cast<unsigned>(shards_.size());
    if (shards == 1) {
      if (insert) {
        shards_[0]->BatchInsert(batch);
      } else {
        shards_[0]->BatchUpdate(batch);
      }
      return;
    }

    const std::size_t n = batch.size;
    std::vector<std::uint32_t> shard_of(n);
    std::vector<std::size_t> offsets(shards + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      shard_of[i] = ShardOf(batch.keys[i], shards);
      ++offsets[shard_of[i] + 1];
    }
    for (unsigned s = 0; s < shards; ++s) offsets[s + 1] += offsets[s];

    std::vector<K> keys_by_shard(n);
    std::vector<V> vals_by_shard(n);
    std::vector<std::size_t> perm(n);
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos = cursor[shard_of[i]]++;
      keys_by_shard[pos] = batch.keys[i];
      vals_by_shard[pos] = batch.vals[i];
      perm[pos] = i;
    }

    std::vector<std::uint8_t> ok_by_shard(n);
    for (unsigned s = 0; s < shards; ++s) {
      const std::size_t off = offsets[s];
      const std::size_t len = offsets[s + 1] - off;
      if (len == 0) continue;
      const auto slice = MutationBatch<K, V>::Of(
          keys_by_shard.data() + off, vals_by_shard.data() + off,
          ok_by_shard.data() + off, len);
      if (insert) {
        shards_[s]->BatchInsert(slice);
      } else {
        shards_[s]->BatchUpdate(slice);
      }
    }
    if (batch.ok != nullptr) {
      for (std::size_t pos = 0; pos < n; ++pos) {
        batch.ok[perm[pos]] = ok_by_shard[pos];
      }
    }
  }

  ConcurrentCuckooTable<K, V>& shard_for(K key) {
    return *shards_[ShardOf(key, num_shards())];
  }
  const ConcurrentCuckooTable<K, V>& shard_for(K key) const {
    return *shards_[ShardOf(key, num_shards())];
  }

  // unique_ptr because a shard owns a writer mutex (not movable).
  std::vector<std::unique_ptr<ConcurrentCuckooTable<K, V>>> shards_;
  std::vector<std::uint64_t> shard_seeds_;
};

using ShardedTable32 = ShardedTable<std::uint32_t, std::uint32_t>;
using ShardedTable64 = ShardedTable<std::uint64_t, std::uint64_t>;

extern template class ShardedTable<std::uint16_t, std::uint32_t>;
extern template class ShardedTable<std::uint32_t, std::uint32_t>;
extern template class ShardedTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht

#endif  // SIMDHT_HT_SHARDED_TABLE_H_
