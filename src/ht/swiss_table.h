// Swiss-table (open addressing + control-byte metadata lane) hash table.
//
// The second table *family* in the benchmark, next to the (N, m) cuckoo
// tables: instead of N candidate buckets resolved by displacement, a Swiss
// table stores one 7-bit H2 fingerprint per slot in a contiguous control
// lane (ht/layout.h: FULL 0x00..0x7F | EMPTY 0x80 | TOMBSTONE 0xFE) and
// probes 16-slot groups linearly from the key's home group. SIMD lookups
// scan the control lane 16/32/64 bytes at a time (src/simd/swiss_*.cc) and
// only touch the key arena to verify fingerprint matches — the abseil
// flat_hash_map / F14 probing discipline, specialized to this benchmark's
// fixed-width pre-hashed keys.
//
// Like CuckooTable this is a *policy* class over the shared TableStore: the
// store owns the key/value arena, the control lane (+ its cyclic vector-load
// mirror), the seqlock stripes and the TableView; SwissTable only decides
// what to write.
//
// Probe invariant the kernels rely on (see docs/swiss_table.md): for every
// stored key k placed in group G_k, no group in [home(k), G_k) — probe
// order, wrapping — contains an EMPTY byte. Insert maintains it by placing
// at the first EMPTY/TOMBSTONE slot of the probe sequence; Erase maintains
// it by only writing EMPTY into a group that already contains EMPTY
// (otherwise TOMBSTONE). A lookup may therefore scan any whole-group window
// width and stop after the first window containing an EMPTY byte.
#ifndef SIMDHT_HT_SWISS_TABLE_H_
#define SIMDHT_HT_SWISS_TABLE_H_

#include <cstdint>
#include <cstring>

#include "ht/mutation.h"
#include "ht/table_store.h"

namespace simdht {

// Writer-side insertion counters (racy reads are fine for reporting).
struct SwissInsertStats {
  std::uint64_t inserts = 0;           // new key placed in an EMPTY slot
  std::uint64_t updates = 0;           // existing key's value overwritten
  std::uint64_t tombstone_reuses = 0;  // new key placed over a TOMBSTONE
  std::uint64_t failed_inserts = 0;    // Insert() returned false
};

// K in {uint16_t, uint32_t, uint64_t}; V in {uint32_t, uint64_t}.
template <typename K, typename V>
class SwissTable {
 public:
  // `min_groups` 16-slot groups, rounded up to a power of two (>= 2).
  // `seed` randomizes the hash family (0 = deterministic defaults);
  // `hash_kind` selects multiply-shift or wyhash for group selection + H2.
  explicit SwissTable(std::uint64_t min_groups, std::uint64_t seed = 0,
                      HashKind hash_kind = HashKind::kMultiplyShift);

  SwissTable(SwissTable&&) noexcept = default;
  SwissTable& operator=(SwissTable&&) noexcept = default;

  // Inserts or overwrites. Key 0 is rejected (returns false) like every
  // table in the repo — workload generators never emit it. Returns false
  // only when no EMPTY or TOMBSTONE slot remains anywhere (the table is
  // truly full); there is no displacement, stash or rebuild machinery.
  bool Insert(K key, V val);

  // Batched mutation surface (ht/mutation.h). Bit-identical to the scalar
  // Insert loop: home groups and H2 fingerprints are block-hashed for the
  // chunk, control lanes write-prefetched, and each probe group resolved
  // with one SIMD control scan (match/EMPTY/free masks) instead of a
  // 16-slot byte walk — find-or-insert picks exactly the slot the scalar
  // walk picks (first free slot of the probe sequence).
  void BatchInsert(const MutationBatch<K, V>& batch);

  // Batched UpdateValue: ok[i] = key present (value overwritten in place).
  void BatchUpdate(const MutationBatch<K, V>& batch);

  // Scalar reference lookup: groupwise probe of the control lane, key
  // verify on fingerprint match, stop at the first group holding an EMPTY.
  // This is the semantics every Swiss SIMD kernel must reproduce.
  bool Find(K key, V* val) const;

  // Overwrites the value of an existing key in place (single aligned word
  // store — safe against concurrent readers, same contract as
  // CuckooTable::UpdateValue). Returns false if the key is absent.
  bool UpdateValue(K key, V val);

  // Removes the key if present. Writes EMPTY when the slot's group already
  // holds an EMPTY byte (no probe sequence can pass fully through such a
  // group), TOMBSTONE otherwise — the abseil deletion rule that preserves
  // the probe invariant above.
  bool Erase(K key);

  std::uint64_t size() const { return store_.size(); }
  std::uint64_t capacity() const { return store_.num_slots(); }
  double load_factor() const {
    return static_cast<double>(size()) / static_cast<double>(capacity());
  }

  std::uint64_t num_buckets() const { return store_.num_buckets(); }
  const LayoutSpec& spec() const { return store_.spec(); }
  std::uint64_t table_bytes() const { return store_.table_bytes(); }
  const SwissInsertStats& insert_stats() const { return stats_; }

  // Read-only view for lookup kernels (view().meta is the control lane).
  TableView view() const { return store_.view(); }

  TableStore& store() { return store_; }
  const TableStore& store() const { return store_; }

  // Snapshot support (ht/table_io.h): raw slot arena, control lane and hash
  // family. The control lane is reached through store().
  const std::uint8_t* raw_data() const { return store_.data(); }
  std::uint8_t* raw_data_mutable() { return store_.data(); }
  const HashFamily& hash_family() const { return store_.hash(); }
  void RestoreState(const HashFamily& hash, std::uint64_t size,
                    std::uint64_t seed) {
    store_.Restore(hash, size, seed);
  }

  // Raw slot access for tests. `bucket` is the group index.
  K KeyAt(std::uint64_t bucket, unsigned slot) const {
    return store_.KeyAt<K>(bucket, slot);
  }
  V ValAt(std::uint64_t bucket, unsigned slot) const {
    return store_.ValAt<V>(bucket, slot);
  }
  std::uint8_t CtrlAt(std::uint64_t flat_slot) const {
    return store_.CtrlAt(flat_slot);
  }

 private:
  std::uint64_t HomeGroup(K key) const {
    return store_.Bucket<K>(0, key);
  }

  // Locates `key`; returns true and fills (group, slot) when present.
  bool Locate(K key, std::uint64_t* group, unsigned* slot) const;

  TableStore store_;
  SwissInsertStats stats_;
};

using SwissTable16x32 = SwissTable<std::uint16_t, std::uint32_t>;
using SwissTable32 = SwissTable<std::uint32_t, std::uint32_t>;
using SwissTable64 = SwissTable<std::uint64_t, std::uint64_t>;

extern template class SwissTable<std::uint16_t, std::uint32_t>;
extern template class SwissTable<std::uint32_t, std::uint32_t>;
extern template class SwissTable<std::uint64_t, std::uint64_t>;

}  // namespace simdht

#endif  // SIMDHT_HT_SWISS_TABLE_H_
