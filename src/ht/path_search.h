// Shared BFS path-search insertion engine for cuckoo-family tables.
//
// A bounded random walk (what MemC3 and CuckooSwitch ship, and what this
// suite used before) finds *a* chain of evictions; breadth-first search
// finds the *shortest* one, and — crucially for the load-factor
// characterization of Fig 2 — it only fails when no reachable bucket has an
// empty slot within the search budget, not when a walk got unlucky. The BFS
// is read-only: a failed search makes zero writes, so the failed-insert
// unwind invariant (table bytes bit-identical) holds trivially.
//
// The engine is generic over a small Graph concept so one search serves
// every table family:
//
//   struct Graph {
//     unsigned roots() const;                // candidate buckets of new key
//     std::uint64_t root(unsigned i) const;
//     unsigned slots() const;                // slots per bucket
//     bool empty_slot(std::uint64_t b, unsigned s) const;
//     // Alternate buckets the occupant of (b, s) could move to (never b
//     // itself); returns how many were written to out[kMaxWays].
//     unsigned alts(std::uint64_t b, unsigned s, std::uint64_t* out) const;
//   };
//
// CuckooTable / ConcurrentCuckooTable use CuckooPathGraph (full keys, N
// ways); Memc3Table builds its own adapter over (bucket, tag) pairs —
// partial-key displacement derives the alternate bucket from the tag alone.
//
// Buckets are deduplicated with a generation-stamped visited set (cuckoo
// graphs are dense in alternates; without dedup the frontier revisits the
// same handful of buckets and the node budget measures churn, not reach).
#ifndef SIMDHT_HT_PATH_SEARCH_H_
#define SIMDHT_HT_PATH_SEARCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "hash/hash_family.h"
#include "ht/layout.h"

namespace simdht {

// One hop of an eviction chain. path[0] is where the new key lands; the
// occupant of path[i] moves to path[i+1]; path.back() is an empty slot.
struct PathStep {
  std::uint64_t bucket = 0;
  unsigned slot = 0;
};

struct PathSearchLimits {
  // Buckets examined before the search declares the table full. 1024 nodes
  // is far past the point where a cuckoo graph with any reachable empty
  // slot would have surfaced one.
  unsigned max_nodes = 1024;
  // Eviction-chain length cap. BCHT chains self-limit to a handful of hops;
  // non-bucketized (N,1) tables near their max LF genuinely need long
  // chains, so the cap is generous.
  unsigned max_depth = 256;
};

// Reusable search state: node pool + visited set. One per table (writers
// are serialized), reused across inserts so steady-state search allocates
// nothing.
class PathSearchScratch {
 public:
  struct Node {
    std::uint64_t bucket;
    std::int32_t parent;     // index into nodes, -1 for roots
    std::uint16_t via_slot;  // slot in parent whose occupant leads here
    std::uint16_t depth;
  };

  // Clears the node pool and starts a fresh visited generation, sizing the
  // stamp table so it can never fill within `max_nodes` insertions.
  void Prepare(unsigned max_nodes);

  // Marks `bucket` visited; false if it already was this generation.
  bool MarkVisited(std::uint64_t bucket);

  std::vector<Node> nodes;

 private:
  std::vector<std::uint64_t> visited_buckets_;
  std::vector<std::uint32_t> visited_gen_;
  std::uint32_t generation_ = 0;
  std::uint32_t mask_ = 0;
};

// BFS from the graph's root buckets to the nearest empty slot. On success
// fills `path` root-first (see PathStep) and returns true; on failure
// returns false having performed no writes to the table.
template <typename Graph>
bool FindEvictionPath(const Graph& graph, const PathSearchLimits& limits,
                      PathSearchScratch* scratch,
                      std::vector<PathStep>* path) {
  auto& nodes = scratch->nodes;
  scratch->Prepare(limits.max_nodes);
  path->clear();

  for (unsigned r = 0; r < graph.roots(); ++r) {
    const std::uint64_t b = graph.root(r);
    if (scratch->MarkVisited(b)) nodes.push_back({b, -1, 0, 0});
  }

  const unsigned slots = graph.slots();
  std::int32_t goal = -1;
  unsigned goal_slot = 0;
  for (std::size_t head = 0; head < nodes.size() && goal < 0; ++head) {
    const std::uint64_t b = nodes[head].bucket;
    for (unsigned s = 0; s < slots; ++s) {
      if (graph.empty_slot(b, s)) {
        goal = static_cast<std::int32_t>(head);
        goal_slot = s;
        break;
      }
    }
    if (goal >= 0) break;
    if (nodes[head].depth >= limits.max_depth) continue;
    const auto next_depth = static_cast<std::uint16_t>(nodes[head].depth + 1);
    std::uint64_t alts[kMaxWays];
    for (unsigned s = 0; s < slots && nodes.size() < limits.max_nodes; ++s) {
      const unsigned n_alts = graph.alts(b, s, alts);
      for (unsigned a = 0;
           a < n_alts && nodes.size() < limits.max_nodes; ++a) {
        if (!scratch->MarkVisited(alts[a])) continue;
        nodes.push_back({alts[a], static_cast<std::int32_t>(head),
                         static_cast<std::uint16_t>(s), next_depth});
      }
    }
  }
  if (goal < 0) return false;

  // Walk parent links goal -> root, then reverse into root-first order.
  path->push_back({nodes[static_cast<std::size_t>(goal)].bucket, goal_slot});
  for (std::int32_t n = goal;
       nodes[static_cast<std::size_t>(n)].parent >= 0;
       n = nodes[static_cast<std::size_t>(n)].parent) {
    const auto& node = nodes[static_cast<std::size_t>(n)];
    path->push_back({nodes[static_cast<std::size_t>(node.parent)].bucket,
                     node.via_slot});
  }
  std::reverse(path->begin(), path->end());
  return true;
}

}  // namespace simdht

#endif  // SIMDHT_HT_PATH_SEARCH_H_
