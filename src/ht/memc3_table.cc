#include "ht/memc3_table.h"

#include <immintrin.h>

#include <cstring>
#include <vector>

#include "hash/hash_family.h"

namespace simdht {

Memc3Table::Memc3Table(std::uint64_t num_buckets, std::uint64_t seed,
                       TagMatch tag_match)
    : store_(TableShape::Raw(num_buckets, sizeof(Bucket)), seed),
      walk_rng_(seed ^ 0xDEADBEEFCAFEF00DULL) {
  tag_match_ = tag_match;
  bucket_mask_ = static_cast<std::uint32_t>(store_.num_buckets() - 1);
  buckets_ = store_.as<Bucket>();
}

unsigned Memc3Table::ScanBucket(const Bucket& bucket, std::uint8_t tag,
                                std::uint64_t* out, unsigned count) const {
  if (tag_match_ == TagMatch::kSse) {
    // All four tags compared in one shot: broadcast the probe tag, compare
    // bytewise, movemask. (A 32-bit lane holds the whole tag array.)
    std::uint32_t tags_word;
    std::memcpy(&tags_word, bucket.tags, 4);
    const __m128i probe = _mm_set1_epi8(static_cast<char>(tag));
    const __m128i tags = _mm_cvtsi32_si128(static_cast<int>(tags_word));
    unsigned mask = static_cast<unsigned>(
                        _mm_movemask_epi8(_mm_cmpeq_epi8(tags, probe))) &
                    0xF;
    while (mask != 0) {
      const unsigned s = static_cast<unsigned>(__builtin_ctz(mask));
      out[count++] = bucket.items[s];
      mask &= mask - 1;
    }
    return count;
  }
  for (unsigned s = 0; s < kSlotsPerBucket; ++s) {
    if (bucket.tags[s] == tag) out[count++] = bucket.items[s];
  }
  return count;
}

void Memc3Table::PrefetchCandidates(std::uint64_t hash) const {
  const std::uint8_t tag = Tag8(hash);
  const std::uint32_t b1 = IndexHash(hash);
  const std::uint32_t b2 = AltBucket(b1, tag);
  // A 40-byte bucket can straddle a cache-line boundary: cover both ends.
  __builtin_prefetch(&buckets_[b1], 0, 1);
  __builtin_prefetch(reinterpret_cast<const std::uint8_t*>(&buckets_[b1]) +
                         sizeof(Bucket) - 1, 0, 1);
  __builtin_prefetch(&buckets_[b2], 0, 1);
  __builtin_prefetch(reinterpret_cast<const std::uint8_t*>(&buckets_[b2]) +
                         sizeof(Bucket) - 1, 0, 1);
}

unsigned Memc3Table::FindCandidates(std::uint64_t hash,
                                    std::uint64_t out[kMaxCandidates]) const {
  const std::uint8_t tag = Tag8(hash);
  const std::uint32_t b1 = IndexHash(hash);
  const std::uint32_t b2 = AltBucket(b1, tag);

  for (;;) {
    // Optimistic read: both buckets hash to possibly different stripes;
    // snapshot both counters, probe, and re-check.
    const std::uint64_t v1a = VersionFor(b1).load(std::memory_order_acquire);
    const std::uint64_t v2a = VersionFor(b2).load(std::memory_order_acquire);
    if ((v1a | v2a) & 1) continue;  // writer in flight

    unsigned count = 0;
    for (std::uint32_t b : {b1, b2}) {
      count = ScanBucket(buckets_[b], tag, out, count);
      if (b1 == b2) break;  // tag aliased to the same bucket
    }

    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t v1b = VersionFor(b1).load(std::memory_order_acquire);
    const std::uint64_t v2b = VersionFor(b2).load(std::memory_order_acquire);
    if (v1a == v1b && v2a == v2b) return count;
  }
}

bool Memc3Table::Insert(std::uint64_t hash, std::uint64_t item) {
  std::lock_guard<std::mutex> lock(writer_mu_);

  std::uint8_t cur_tag = Tag8(hash);
  std::uint64_t cur_item = item;
  std::uint32_t b1 = IndexHash(hash);

  // Displacements are recorded so an exhausted walk can be unwound: a
  // failed Insert must not drop a previously stored entry.
  struct Step {
    std::uint32_t bucket;
    unsigned slot;
  };
  std::vector<Step> path;

  for (unsigned kick = 0; kick < kMaxKicks; ++kick) {
    const std::uint32_t b2 = AltBucket(b1, cur_tag);
    for (std::uint32_t b : {b1, b2}) {
      Bucket& bucket = buckets_[b];
      for (unsigned s = 0; s < kSlotsPerBucket; ++s) {
        if (bucket.tags[s] == 0) {
          auto& ver = VersionFor(b);
          ver.fetch_add(1, std::memory_order_acq_rel);
          StoreEntry(bucket, s, cur_tag, cur_item);
          ver.fetch_add(1, std::memory_order_release);
          store_.AdjustSize(1);
          return true;
        }
      }
      if (b1 == b2) break;
    }

    // No empty slot: displace a random occupant of b1 to its alternate.
    const auto victim =
        static_cast<unsigned>(walk_rng_.NextBounded(kSlotsPerBucket));
    Bucket& bucket = buckets_[b1];
    const std::uint8_t evicted_tag = bucket.tags[victim];
    const std::uint64_t evicted_item = bucket.items[victim];
    auto& ver = VersionFor(b1);
    ver.fetch_add(1, std::memory_order_acq_rel);
    StoreEntry(bucket, victim, cur_tag, cur_item);
    ver.fetch_add(1, std::memory_order_release);
    path.push_back({b1, victim});

    // The evicted entry's other candidate bucket is derived from where it
    // was and its tag (partial-key displacement).
    b1 = AltBucket(b1, evicted_tag);
    cur_tag = evicted_tag;
    cur_item = evicted_item;
  }

  // Walk exhausted: unwind in reverse so every displaced entry returns to
  // its original slot and the new item is not inserted.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Bucket& bucket = buckets_[it->bucket];
    const std::uint8_t displaced_tag = bucket.tags[it->slot];
    const std::uint64_t displaced_item = bucket.items[it->slot];
    auto& ver = VersionFor(it->bucket);
    ver.fetch_add(1, std::memory_order_acq_rel);
    StoreEntry(bucket, it->slot, cur_tag, cur_item);
    ver.fetch_add(1, std::memory_order_release);
    cur_tag = displaced_tag;
    cur_item = displaced_item;
  }
  return false;
}

bool Memc3Table::Erase(std::uint64_t hash, std::uint64_t item) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const std::uint8_t tag = Tag8(hash);
  const std::uint32_t b1 = IndexHash(hash);
  const std::uint32_t b2 = AltBucket(b1, tag);
  for (std::uint32_t b : {b1, b2}) {
    Bucket& bucket = buckets_[b];
    for (unsigned s = 0; s < kSlotsPerBucket; ++s) {
      if (bucket.tags[s] == tag && bucket.items[s] == item) {
        auto& ver = VersionFor(b);
        ver.fetch_add(1, std::memory_order_acq_rel);
        StoreEntry(bucket, s, 0, 0);
        ver.fetch_add(1, std::memory_order_release);
        store_.AdjustSize(-1);
        return true;
      }
    }
    if (b1 == b2) break;
  }
  return false;
}

}  // namespace simdht
