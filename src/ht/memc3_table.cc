#include "ht/memc3_table.h"

#include <immintrin.h>

#include <cstring>
#include <vector>

#include "hash/hash_family.h"

namespace simdht {

Memc3Table::Memc3Table(std::uint64_t num_buckets, std::uint64_t seed,
                       TagMatch tag_match)
    : store_(TableShape::Raw(num_buckets, sizeof(Bucket)), seed) {
  tag_match_ = tag_match;
  bucket_mask_ = static_cast<std::uint32_t>(store_.num_buckets() - 1);
  buckets_ = store_.as<Bucket>();
  store_.set_stash_capacity(kStashCapacity);
}

unsigned Memc3Table::ScanBucket(const Bucket& bucket, std::uint8_t tag,
                                std::uint64_t* out, unsigned count) const {
  if (tag_match_ == TagMatch::kSse) {
    // All four tags compared in one shot: broadcast the probe tag, compare
    // bytewise, movemask. (A 32-bit lane holds the whole tag array.)
    std::uint32_t tags_word;
    std::memcpy(&tags_word, bucket.tags, 4);
    const __m128i probe = _mm_set1_epi8(static_cast<char>(tag));
    const __m128i tags = _mm_cvtsi32_si128(static_cast<int>(tags_word));
    unsigned mask = static_cast<unsigned>(
                        _mm_movemask_epi8(_mm_cmpeq_epi8(tags, probe))) &
                    0xF;
    while (mask != 0) {
      const unsigned s = static_cast<unsigned>(__builtin_ctz(mask));
      out[count++] = bucket.items[s];
      mask &= mask - 1;
    }
    return count;
  }
  for (unsigned s = 0; s < kSlotsPerBucket; ++s) {
    if (bucket.tags[s] == tag) out[count++] = bucket.items[s];
  }
  return count;
}

void Memc3Table::PrefetchCandidates(std::uint64_t hash) const {
  const std::uint8_t tag = Tag8(hash);
  const std::uint32_t b1 = IndexHash(hash);
  const std::uint32_t b2 = AltBucket(b1, tag);
  // A 40-byte bucket can straddle a cache-line boundary: cover both ends.
  __builtin_prefetch(&buckets_[b1], 0, 1);
  __builtin_prefetch(reinterpret_cast<const std::uint8_t*>(&buckets_[b1]) +
                         sizeof(Bucket) - 1, 0, 1);
  __builtin_prefetch(&buckets_[b2], 0, 1);
  __builtin_prefetch(reinterpret_cast<const std::uint8_t*>(&buckets_[b2]) +
                         sizeof(Bucket) - 1, 0, 1);
}

unsigned Memc3Table::FindCandidates(std::uint64_t hash,
                                    std::uint64_t out[kMaxCandidates]) const {
  const std::uint8_t tag = Tag8(hash);
  const std::uint32_t b1 = IndexHash(hash);
  const std::uint32_t b2 = AltBucket(b1, tag);

  for (;;) {
    // Optimistic read: both buckets hash to possibly different stripes;
    // snapshot both counters (and the stash seqlock), probe, and re-check.
    const std::uint64_t v1a = VersionFor(b1).load(std::memory_order_acquire);
    const std::uint64_t v2a = VersionFor(b2).load(std::memory_order_acquire);
    const std::uint64_t vsa =
        store_.StashVersion().load(std::memory_order_acquire);
    if ((v1a | v2a | vsa) & 1) continue;  // writer in flight

    unsigned count = 0;
    for (std::uint32_t b : {b1, b2}) {
      count = ScanBucket(buckets_[b], tag, out, count);
      if (b1 == b2) break;  // tag aliased to the same bucket
    }
    // Overflow-stash entries are (tag, item) pairs: same tag-match
    // contract as bucket slots (caller verifies the full key).
    const unsigned stash_n = store_.stash_count();
    for (unsigned i = 0; i < stash_n && count < kMaxCandidates; ++i) {
      const StashEntry e = store_.stash_at(i);
      if (static_cast<std::uint8_t>(e.key) == tag) out[count++] = e.val;
    }

    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t v1b = VersionFor(b1).load(std::memory_order_acquire);
    const std::uint64_t v2b = VersionFor(b2).load(std::memory_order_acquire);
    const std::uint64_t vsb =
        store_.StashVersion().load(std::memory_order_acquire);
    if (v1a == v1b && v2a == v2b && vsa == vsb) return count;
  }
}

bool Memc3Table::StashContains(std::uint64_t item) const {
  const unsigned stash_n = store_.stash_count();
  for (unsigned i = 0; i < stash_n; ++i) {
    if (store_.stash_at(i).val == item) return true;
  }
  return false;
}

bool Memc3Table::Insert(std::uint64_t hash, std::uint64_t item) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return InsertLocked(hash, item);
}

bool Memc3Table::InsertLocked(std::uint64_t hash, std::uint64_t item) {
  const std::uint8_t tag = Tag8(hash);
  const std::uint32_t b1 = IndexHash(hash);

  // Graph adapter for the shared BFS engine over (tag, item) buckets:
  // partial-key displacement — an occupant's alternate bucket is derived
  // from (bucket, tag) alone, so each occupied slot has exactly one edge.
  // (A local class may touch the enclosing class's private members.)
  struct TagGraph {
    const Memc3Table* t;
    std::uint8_t tag;
    std::uint32_t b1;

    unsigned roots() const { return kWays; }
    std::uint64_t root(unsigned i) const {
      return i == 0 ? b1 : t->AltBucket(b1, tag);
    }
    unsigned slots() const { return kSlotsPerBucket; }
    bool empty_slot(std::uint64_t b, unsigned s) const {
      return t->buckets_[b].tags[s] == 0;
    }
    unsigned alts(std::uint64_t b, unsigned s, std::uint64_t* out) const {
      const std::uint8_t occupant = t->buckets_[b].tags[s];
      if (occupant == 0) return 0;
      const std::uint32_t alt =
          t->AltBucket(static_cast<std::uint32_t>(b), occupant);
      if (alt == b) return 0;
      out[0] = alt;
      return 1;
    }
  };

  PathSearchLimits limits;
  limits.max_nodes = kMaxBfsNodes;
  limits.max_depth = kMaxBfsDepth;
  if (FindEvictionPath(TagGraph{this, tag, b1}, limits, &scratch_, &path_)) {
    // Apply from the tail: each displaced (tag, item) is written to its
    // destination before its source slot is overwritten, so readers never
    // observe a missing entry (transient duplicates are harmless — the
    // caller verifies full keys behind every candidate anyway). Only one
    // bucket mutates per step, so only its stripe bumps odd.
    for (std::size_t i = path_.size() - 1; i > 0; --i) {
      const PathStep& src = path_[i - 1];
      const PathStep& dst = path_[i];
      const std::uint8_t moved_tag = buckets_[src.bucket].tags[src.slot];
      const std::uint64_t moved_item = buckets_[src.bucket].items[src.slot];
      auto& ver = VersionFor(static_cast<std::uint32_t>(dst.bucket));
      ver.fetch_add(1, std::memory_order_acq_rel);
      StoreEntry(buckets_[dst.bucket], dst.slot, moved_tag, moved_item);
      ver.fetch_add(1, std::memory_order_release);
    }
    const PathStep& home = path_.front();
    auto& ver = VersionFor(static_cast<std::uint32_t>(home.bucket));
    ver.fetch_add(1, std::memory_order_acq_rel);
    StoreEntry(buckets_[home.bucket], home.slot, tag, item);
    ver.fetch_add(1, std::memory_order_release);
    store_.AdjustSize(1);
    return true;
  }

  // No eviction path: spill (tag, item) to the overflow stash. An append
  // publishes the entry before the count, so readers need no retry. There
  // is no rebuild tier behind the stash — a tag table cannot re-derive
  // buckets from its partial keys — so a full stash means genuinely full.
  if (store_.StashAppend(tag, item)) {
    store_.AdjustSize(1);
    return true;
  }
  return false;
}

namespace {

// Lowest zero tag byte of a bucket's 4-byte tag word (-1 = none): classic
// SWAR zero-byte scan; false positives only arise above the first true
// zero, and ctz always picks the lowest, so the result is exact. Slot
// order matches the BFS root scan (ascending).
int FirstEmptyTagSlot(const std::uint8_t* tags) {
  std::uint32_t w;
  std::memcpy(&w, tags, 4);
  const std::uint32_t z = (w - 0x01010101u) & ~w & 0x80808080u;
  if (z == 0) return -1;
  return static_cast<int>(__builtin_ctz(z) >> 3);
}

}  // namespace

void Memc3Table::BatchInsert(const std::uint64_t* hashes,
                             const std::uint64_t* items, std::uint8_t* ok,
                             std::size_t n) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  // Sliding prefetch window: candidate buckets of upcoming keys stream in
  // while the current key's slot write lands.
  constexpr std::size_t kWindow = 16;
  const std::size_t lead = n < kWindow ? n : kWindow;
  for (std::size_t j = 0; j < lead; ++j) PrefetchCandidatesForWrite(hashes[j]);
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kWindow < n) PrefetchCandidatesForWrite(hashes[i + kWindow]);
    const std::uint8_t tag = Tag8(hashes[i]);
    const std::uint32_t b1 = IndexHash(hashes[i]);
    const std::uint32_t b2 = AltBucket(b1, tag);
    std::uint8_t r = 1;
    std::uint32_t b = b1;
    int slot = FirstEmptyTagSlot(buckets_[b1].tags);
    if (slot < 0 && b2 != b1) {
      b = b2;
      slot = FirstEmptyTagSlot(buckets_[b2].tags);
    }
    if (slot >= 0) {
      // A BFS path of length one, published exactly like the scalar core:
      // stripe odd, slot store, stripe even, then the size bump.
      auto& ver = VersionFor(b);
      ver.fetch_add(1, std::memory_order_acq_rel);
      StoreEntry(buckets_[b], static_cast<unsigned>(slot), tag, items[i]);
      ver.fetch_add(1, std::memory_order_release);
      store_.AdjustSize(1);
    } else {
      // Both candidate buckets full: locked BFS / stash core.
      r = InsertLocked(hashes[i], items[i]) ? 1 : 0;
    }
    if (ok != nullptr) ok[i] = r;
  }
}

bool Memc3Table::Erase(std::uint64_t hash, std::uint64_t item) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const std::uint8_t tag = Tag8(hash);
  const std::uint32_t b1 = IndexHash(hash);
  const std::uint32_t b2 = AltBucket(b1, tag);
  for (std::uint32_t b : {b1, b2}) {
    Bucket& bucket = buckets_[b];
    for (unsigned s = 0; s < kSlotsPerBucket; ++s) {
      if (bucket.tags[s] == tag && bucket.items[s] == item) {
        auto& ver = VersionFor(b);
        ver.fetch_add(1, std::memory_order_acq_rel);
        StoreEntry(bucket, s, 0, 0);
        ver.fetch_add(1, std::memory_order_release);
        store_.AdjustSize(-1);
        return true;
      }
    }
    if (b1 == b2) break;
  }
  const unsigned stash_n = store_.stash_count();
  for (unsigned i = 0; i < stash_n; ++i) {
    const StashEntry e = store_.stash_at(i);
    if (static_cast<std::uint8_t>(e.key) == tag && e.val == item) {
      // Swap-remove mutates the entry in place: readers validate against
      // the stash seqlock snapshot taken in FindCandidates.
      store_.StashVersion().fetch_add(1, std::memory_order_acq_rel);
      store_.StashRemoveAt(i);
      store_.StashVersion().fetch_add(1, std::memory_order_release);
      store_.AdjustSize(-1);
      return true;
    }
  }
  return false;
}

}  // namespace simdht
