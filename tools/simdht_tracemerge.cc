// simdht_tracemerge — merge a loadgen client trace with server traces
// onto one clock (see obs/trace_merge.h for the alignment method).
//
//   simdht_tracemerge --out=merged.json client.json 0=server0.json ...
//
// Server inputs are LABEL=PATH where LABEL matches the clock_sync
// "server" arg the loadgen recorded — the endpoint index ("0", "1", ...)
// in endpoint order of --servers.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/trace_merge.h"

using namespace simdht;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: simdht_tracemerge [--out=PATH] CLIENT.json LABEL=SERVER.json"
      " [LABEL=SERVER.json ...]\n"
      "  CLIENT.json    loadgen trace (simdht loadgen --trace-out)\n"
      "  LABEL=PATH     server trace (simdht serve --trace); LABEL is the\n"
      "                 endpoint index in the loadgen's --servers order\n"
      "  --out=PATH     write the merged trace here (default stdout)\n"
      "prints the per-server clock offset estimates on stderr.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("help") || flags.Has("h")) {
    Usage();
    return 0;
  }
  const std::vector<std::string>& args = flags.positional();
  if (args.size() < 2) {
    Usage();
    return 1;
  }
  const std::string& client_path = args[0];
  std::vector<TraceMergeInput> servers;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::size_t eq = args[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == args[i].size()) {
      std::fprintf(stderr,
                   "simdht_tracemerge: server input '%s' is not "
                   "LABEL=PATH\n",
                   args[i].c_str());
      return 1;
    }
    TraceMergeInput input;
    input.label = args[i].substr(0, eq);
    input.path = args[i].substr(eq + 1);
    servers.push_back(std::move(input));
  }

  TraceMergeResult result;
  std::string err;
  if (!MergeTraces(client_path, servers, &result, &err)) {
    std::fprintf(stderr, "simdht_tracemerge: %s\n", err.c_str());
    return 1;
  }
  for (const auto& alignment : result.alignments) {
    std::fprintf(stderr,
                 "server %s: offset %+.1f us over %zu sync sample(s)\n",
                 alignment.label.c_str(), alignment.offset_us,
                 alignment.sync_samples);
  }

  const std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::fputs(result.json.c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "simdht_tracemerge: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  out << result.json << '\n';
  if (!out.good()) {
    std::fprintf(stderr, "simdht_tracemerge: write to %s failed\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "merged %zu input file(s) into %s\n",
               servers.size() + 1, out_path.c_str());
  return 0;
}
