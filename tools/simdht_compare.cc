// simdht_compare — diff two RunReports and flag throughput regressions.
//
// Rows are matched by (kernel, canonical config key). For each matched row
// the primary metric (default mlps_per_core, falling back per-row to the
// first metric both sides share) is compared; a delta counts as significant
// only beyond a noise band combining the relative threshold with the
// recorded stddev of both runs. Intended for CI: exit 0 = no regressions,
// 1 = at least one regression, 2 = usage/parse error.
//
//   simdht_compare baseline.json current.json
//   simdht_compare --metric=mlps_per_core --threshold=0.05 --sigma=3 a b
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "obs/run_report.h"

using namespace simdht;

namespace {

struct RowDelta {
  const ResultRow* base;
  const ResultRow* cur;
  std::string metric;
  double base_mean = 0.0;
  double cur_mean = 0.0;
  double rel_delta = 0.0;   // (cur - base) / base
  double noise_band = 0.0;  // relative threshold actually applied
  bool regression = false;
  bool improvement = false;
};

using RowKey = std::pair<std::string, std::string>;  // kernel, config key

std::map<RowKey, const ResultRow*> IndexRows(const RunReport& report) {
  std::map<RowKey, const ResultRow*> index;
  for (const ResultRow& row : report.results) {
    index[{row.kernel, row.ConfigKey()}] = &row;
  }
  return index;
}

// The metric to diff for this row pair: the requested one when both sides
// have it, else the first metric they share (so e.g. fig2's
// max_load_factor rows are still compared).
std::string PickMetric(const ResultRow& base, const ResultRow& cur,
                       const std::string& requested) {
  if (base.FindMetric(requested) != nullptr &&
      cur.FindMetric(requested) != nullptr) {
    return requested;
  }
  for (const auto& [name, stat] : base.metrics) {
    if (cur.FindMetric(name) != nullptr) return name;
  }
  return "";
}

std::string Pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", v * 100.0);
  return buf;
}

std::string Band(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("help") || flags.positional().size() != 2) {
    std::fprintf(
        stderr,
        "usage: %s [options] BASELINE.json CURRENT.json\n"
        "  --metric=NAME     primary metric (default mlps_per_core; falls\n"
        "                    back per row to the first shared metric)\n"
        "  --threshold=F     relative noise floor (default 0.05 = 5%%)\n"
        "  --sigma=F         stddev multiplier widening the band for noisy\n"
        "                    rows (default 3.0; 0 disables)\n"
        "  --fail-on-missing also fail when a baseline row disappears\n",
        flags.program_name().c_str());
    return flags.Has("help") ? 0 : 2;
  }
  const std::string metric = flags.GetString("metric", "mlps_per_core");
  const double threshold = flags.GetDouble("threshold", 0.05);
  const double sigma = flags.GetDouble("sigma", 3.0);
  const bool fail_on_missing = flags.GetBool("fail-on-missing", false);

  std::string err;
  const auto base = RunReport::LoadFromFile(flags.positional()[0], &err);
  if (!base.has_value()) {
    std::fprintf(stderr, "%s: %s\n", flags.positional()[0].c_str(),
                 err.c_str());
    return 2;
  }
  const auto cur = RunReport::LoadFromFile(flags.positional()[1], &err);
  if (!cur.has_value()) {
    std::fprintf(stderr, "%s: %s\n", flags.positional()[1].c_str(),
                 err.c_str());
    return 2;
  }

  // Rows whose schema this build doesn't know are skipped with a note —
  // a report from a newer producer shouldn't hard-fail the comparison of
  // the rows we do understand.
  for (const std::string& why : base->skipped_rows) {
    std::fprintf(stderr, "note: %s: skipped %s\n",
                 flags.positional()[0].c_str(), why.c_str());
  }
  for (const std::string& why : cur->skipped_rows) {
    std::fprintf(stderr, "note: %s: skipped %s\n",
                 flags.positional()[1].c_str(), why.c_str());
  }

  std::printf("baseline: %s  (%s, %s)\n", flags.positional()[0].c_str(),
              base->git_sha.c_str(), base->timestamp_utc.c_str());
  std::printf("current:  %s  (%s, %s)\n", flags.positional()[1].c_str(),
              cur->git_sha.c_str(), cur->timestamp_utc.c_str());
  if (base->cpu != cur->cpu) {
    std::printf("note: reports come from different CPUs\n  base: %s\n"
                "  cur:  %s\n",
                base->cpu.c_str(), cur->cpu.c_str());
  }
  std::printf("\n");

  const auto base_index = IndexRows(*base);
  const auto cur_index = IndexRows(*cur);

  std::vector<RowDelta> deltas;
  unsigned missing = 0, added = 0, skipped = 0;
  for (const auto& [key, base_row] : base_index) {
    const auto it = cur_index.find(key);
    if (it == cur_index.end()) {
      std::fprintf(stderr, "missing in current: %s [%s]\n",
                   key.first.c_str(), key.second.c_str());
      ++missing;
      continue;
    }
    const ResultRow* cur_row = it->second;
    RowDelta d;
    d.base = base_row;
    d.cur = cur_row;
    d.metric = PickMetric(*base_row, *cur_row, metric);
    if (d.metric.empty()) {
      ++skipped;
      continue;
    }
    const MetricStat* b = base_row->FindMetric(d.metric);
    const MetricStat* c = cur_row->FindMetric(d.metric);
    d.base_mean = b->mean;
    d.cur_mean = c->mean;
    if (b->mean == 0.0) {
      // Zero baselines can't express a relative delta; only flag
      // something-from-nothing changes beyond the threshold as additions.
      d.rel_delta = c->mean == 0.0 ? 0.0 : 1.0;
      d.noise_band = threshold;
    } else {
      d.rel_delta = (c->mean - b->mean) / b->mean;
      // Pooled stddev of the two runs, relative to the baseline mean.
      const double pooled =
          std::sqrt(b->stddev * b->stddev + c->stddev * c->stddev);
      d.noise_band = std::max(threshold, sigma * pooled / b->mean);
    }
    d.regression = d.rel_delta < -d.noise_band;
    d.improvement = d.rel_delta > d.noise_band;
    deltas.push_back(d);
  }
  for (const auto& [key, row] : cur_index) {
    if (base_index.find(key) == base_index.end()) ++added;
  }

  // Largest regressions first, then largest improvements.
  std::sort(deltas.begin(), deltas.end(),
            [](const RowDelta& a, const RowDelta& b) {
              return a.rel_delta < b.rel_delta;
            });

  TablePrinter table({"kernel", "config", "metric", "baseline", "current",
                      "delta", "band", "verdict"});
  unsigned regressions = 0, improvements = 0;
  for (const RowDelta& d : deltas) {
    if (d.regression) ++regressions;
    if (d.improvement) ++improvements;
    table.AddRow({d.base->kernel, d.base->ConfigKey(), d.metric,
                  TablePrinter::Fmt(d.base_mean, 2),
                  TablePrinter::Fmt(d.cur_mean, 2), Pct(d.rel_delta),
                  Band(d.noise_band),
                  d.regression    ? "REGRESSION"
                  : d.improvement ? "improved"
                                  : "ok"});
  }
  table.Print();

  const std::size_t unparsed =
      base->skipped_rows.size() + cur->skipped_rows.size();
  std::printf(
      "\n%zu rows compared: %u regression(s), %u improvement(s), %u within "
      "noise; %u missing, %u added, %u without a shared metric, %zu with "
      "unknown schema\n",
      deltas.size(), regressions, improvements,
      static_cast<unsigned>(deltas.size()) - regressions - improvements,
      missing, added, skipped, unparsed);

  if (regressions > 0) return 1;
  if (fail_on_missing && missing > 0) return 1;
  return 0;
}
