// simdht — the SimdHT-Bench command-line interface (paper Fig 4).
//
// Wires the suite's four modules together for ad-hoc studies:
//   1. configurable input parameters  (flags below)
//   2. workload/table generator
//   3. SIMD algorithm validation engine (prints the Listing-1 line)
//   4. performance engine (scalar twin vs every viable SIMD design)
//
// Examples:
//   simdht --ways=2 --slots=4 --bytes=1M --pattern=zipf
//   simdht --ways=3 --slots=1 --key-bits=64 --hit-rate=0.5 --threads=4
//   simdht --ways=2 --slots=8 --key-bits=16 --layout=split --csv
//   simdht perf-check        # report hardware-counter availability
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/cpu_features.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/case_report.h"
#include "core/case_runner.h"
#include "core/trace.h"
#include "core/validation.h"
#include "ht/table_builder.h"
#include "obs/run_report.h"
#include "obs/timeline.h"
#include "perf/perf_events.h"
#include "serve_commands.h"

using namespace simdht;

namespace {

std::uint64_t ParseBytes(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != nullptr) {
    switch (*end) {
      case 'k': case 'K': v *= 1 << 10; break;
      case 'm': case 'M': v *= 1 << 20; break;
      case 'g': case 'G': v *= 1 << 30; break;
      default: break;
    }
  }
  return static_cast<std::uint64_t>(v);
}

// `simdht perf-check`: report what the perf subsystem can measure here —
// per-event open results, the paranoid level, and whether measurement
// drivers will use hardware counters or the TSC fallback.
int RunPerfCheck(const Flags& flags) {
  std::string why;
  std::vector<PerfEvent> events;
  if (!ParsePerfEventList(flags.GetString("perf-events", ""), &events,
                          &why)) {
    std::fprintf(stderr, "--perf-events: %s\n", why.c_str());
    return 1;
  }

  std::printf("perf-check: perf_event_open availability\n");
  const int paranoid = PerfEventParanoid();
  if (paranoid == INT_MIN) {
    std::printf("kernel.perf_event_paranoid: unreadable\n");
  } else {
    std::printf("kernel.perf_event_paranoid: %d%s\n", paranoid,
                paranoid >= 2 ? " (user-space-only counting)" : "");
  }
  if (PerfForceDisabled()) {
    std::printf("SIMDHT_PERF_DISABLE=1: hardware counters forced off\n");
  }

  TablePrinter table({"event", "status", "detail"});
  unsigned available = 0;
  for (const PerfEventProbe& probe : ProbePerfEvents(events)) {
    available += probe.available;
    table.AddRow({PerfEventName(probe.event),
                  probe.available ? "ok" : "unavailable",
                  probe.available ? "-" : probe.error});
  }
  table.Print();

  if (available == 0) {
    std::printf(
        "\nno hardware events usable: --perf falls back to rdtsc cycle\n"
        "estimates (reported as '~value' with perf src 'tsc-est').\n");
  } else {
    std::printf("\n%u event(s) usable: --perf reports hardware counts.\n",
                available);
  }
  return 0;
}

// `simdht kernels`: list every registered lookup kernel with its table
// family — the quickest way to see what a forced --kernel name or a
// family/layout combination can resolve to on this CPU.
int RunKernelList() {
  TablePrinter table({"kernel", "family", "approach", "ISA", "width",
                      "key/val", "layout", "cpu"});
  const CpuFeatures& cpu = GetCpuFeatures();
  for (const KernelInfo& k : KernelRegistry::Get().all()) {
    table.AddRow({k.name, TableFamilyName(k.family), ApproachName(k.approach),
                  SimdLevelName(k.level),
                  TablePrinter::Fmt(std::int64_t{k.width_bits}),
                  std::string("k") + std::to_string(k.key_bits) + "/v" +
                      std::to_string(k.val_bits),
                  k.bucket_layout == BucketLayout::kSplit ? "split"
                                                          : "interleaved",
                  cpu.Supports(k.level) ? "ok" : "unsupported"});
  }
  table.Print();
  return 0;
}

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [perf-check|kernels|serve|loadgen|top] [options]\n"
      "subcommands:\n"
      "  perf-check        probe hardware-counter availability and exit\n"
      "  kernels           list registered lookup kernels (with their table\n"
      "                    family: cuckoo or Swiss) and exit\n"
      "  serve             run a KVS server on a real TCP port (see\n"
      "                    'simdht serve --help')\n"
      "  loadgen           open-loop Multi-Get load against serve\n"
      "                    processes (see 'simdht loadgen --help')\n"
      "  top               live rolling-window dashboard for a serve\n"
      "                    process (see 'simdht top --help')\n"
      "table layout:\n"
      "  --family=F        cuckoo | swiss (default cuckoo): swiss probes a\n"
      "                    control-byte lane in 16-slot groups; --ways,\n"
      "                    --slots and --layout are fixed by the family\n"
      "  --hash=H          multiply-shift | wyhash (default multiply-shift;\n"
      "                    wyhash is swiss-only)\n"
      "  --ways=N          hash functions, 2-4 (default 2)\n"
      "  --slots=M         slots per bucket, 1/2/4/8 (default 4)\n"
      "  --key-bits=B      16, 32 or 64 (default 32)\n"
      "  --val-bits=B      32 or 64 (default = key-bits, min 32)\n"
      "  --layout=X        interleaved | split (default interleaved)\n"
      "  --bytes=S         target table size, e.g. 1M, 256K (default 1M)\n"
      "  --load-factor=F   fill target (default 0.9)\n"
      "workload:\n"
      "  --pattern=P       uniform | zipf (default uniform)\n"
      "  --hit-rate=F      probe selectivity (default 0.9)\n"
      "  --zipf-s=F        skew exponent (default 0.99)\n"
      "engine:\n"
      "  --threads=N       worker threads (default: all cores)\n"
      "  --queries=N       probes per thread per run (default 1M)\n"
      "  --repeats=N       runs averaged (default 5)\n"
      "  --prefetch=P      none | group | amac (default none): also measure\n"
      "                    each kernel through the prefetch pipeline\n"
      "  --group-size=N    keys per prefetch group (default 32)\n"
      "  --amac-groups=G   prefetch groups in flight for amac (default 4)\n"
      "  --widths=LIST     vector widths to consider (default 128,256,512)\n"
      "  --hybrid          include vertical-over-BCHT designs\n"
      "  --no-strict       admit chunked horizontal probes\n"
      "  --per-core-table  dedicated table per thread (default shared)\n"
      "  --perf            attach hardware counters; adds cycles/lookup,\n"
      "                    IPC and LLC/dTLB miss columns (rdtsc-estimated\n"
      "                    cycles, marked '~', without perf_event_open)\n"
      "  --perf-events=L   restrict the counter set (see perf-check)\n"
      "  --csv             machine-readable output\n"
      "observability:\n"
      "  --json=PATH       write a structured RunReport (provenance + one\n"
      "                    row per kernel; diff with simdht_compare)\n"
      "  --timeline=PATH   record a Chrome/Perfetto trace of build/warmup/\n"
      "                    repetition spans\n"
      "  --sample-ms=N     snapshot per-worker progress every N ms into\n"
      "                    the report's sample series\n"
      "traces (32-bit interleaved layouts):\n"
      "  --trace-out=PATH  record the generated probe stream and exit\n"
      "  --trace-in=PATH   replay a recorded stream (single-threaded)\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string subcommand =
      flags.positional().empty() ? "" : flags.positional()[0];
  if (flags.Has("help") || flags.Has("h")) {
    if (subcommand == "serve") {
      ServeUsage();
    } else if (subcommand == "loadgen") {
      LoadgenUsage();
    } else if (subcommand == "top") {
      TopUsage();
    } else {
      Usage(argv[0]);
    }
    return 0;
  }

  if (!subcommand.empty()) {
    if (subcommand == "perf-check") return RunPerfCheck(flags);
    if (subcommand == "kernels") return RunKernelList();
    if (subcommand == "serve") return RunServeCommand(flags);
    if (subcommand == "loadgen") return RunLoadgenCommand(flags);
    if (subcommand == "top") return RunTopCommand(flags);
    std::fprintf(stderr, "unknown subcommand '%s'\n", subcommand.c_str());
    Usage(argv[0]);
    return 1;
  }

  CaseSpec spec;
  spec.layout.ways = static_cast<unsigned>(flags.GetInt("ways", 2));
  spec.layout.slots = static_cast<unsigned>(flags.GetInt("slots", 4));
  spec.layout.key_bits =
      static_cast<unsigned>(flags.GetInt("key-bits", 32));
  spec.layout.val_bits = static_cast<unsigned>(flags.GetInt(
      "val-bits", spec.layout.key_bits < 32 ? 32 : spec.layout.key_bits));
  const std::string layout_name =
      flags.GetString("layout", spec.layout.key_bits == spec.layout.val_bits
                                    ? "interleaved"
                                    : "split");
  spec.layout.bucket_layout = layout_name == "split"
                                  ? BucketLayout::kSplit
                                  : BucketLayout::kInterleaved;
  const std::string family_name = flags.GetString("family", "cuckoo");
  if (family_name == "swiss") {
    spec.layout =
        LayoutSpec::Swiss(spec.layout.key_bits, spec.layout.val_bits);
  } else if (family_name != "cuckoo") {
    std::fprintf(stderr, "unknown --family '%s'\n", family_name.c_str());
    return 1;
  }
  const std::string hash_name = flags.GetString("hash", "multiply-shift");
  if (hash_name == "wyhash") {
    spec.run.hash_kind = HashKind::kWyHash;
  } else if (hash_name != "multiply-shift" && hash_name != "ms") {
    std::fprintf(stderr, "unknown --hash '%s'\n", hash_name.c_str());
    return 1;
  }
  spec.table_bytes = ParseBytes(flags.GetString("bytes", "1M"));
  spec.load_factor = flags.GetDouble("load-factor", 0.9);
  spec.hit_rate = flags.GetDouble("hit-rate", 0.9);
  spec.zipf_s = flags.GetDouble("zipf-s", 0.99);
  spec.run.threads = static_cast<unsigned>(flags.GetInt("threads", 0));
  spec.run.queries_per_thread =
      static_cast<std::size_t>(flags.GetInt("queries", 1 << 20));
  spec.run.repeats = static_cast<unsigned>(flags.GetInt("repeats", 5));
  spec.shared_table = !flags.GetBool("per-core-table", false);
  spec.run.seed = flags.GetUint64("seed", 42);
  spec.run.sample_ms =
      static_cast<unsigned>(flags.GetInt("sample-ms", 0));

  const std::string json_path = flags.GetString("json", "");
  const std::string timeline_path = flags.GetString("timeline", "");
  if (!timeline_path.empty()) Timeline::Global().Enable();

  const std::string pattern = flags.GetString("pattern", "uniform");
  if (!ParseAccessPattern(pattern, &spec.pattern)) {
    std::fprintf(stderr, "unknown --pattern '%s'\n", pattern.c_str());
    return 1;
  }

  const std::string prefetch = flags.GetString("prefetch", "none");
  if (!ParsePrefetchPolicy(prefetch, &spec.run.pipeline.policy)) {
    std::fprintf(stderr, "unknown --prefetch '%s'\n", prefetch.c_str());
    return 1;
  }
  spec.run.pipeline.group_size =
      static_cast<unsigned>(flags.GetInt("group-size", 32));
  spec.run.pipeline.amac_groups =
      static_cast<unsigned>(flags.GetInt("amac-groups", 4));
  std::string pipeline_why;
  if (!spec.run.pipeline.Validate(&pipeline_why)) {
    std::fprintf(stderr, "invalid prefetch config: %s\n", pipeline_why.c_str());
    return 1;
  }

  spec.run.perf.enabled =
      flags.GetBool("perf", false) || flags.Has("perf-events");
  std::string perf_why;
  if (!ParsePerfEventList(flags.GetString("perf-events", ""),
                          &spec.run.perf.events, &perf_why)) {
    std::fprintf(stderr, "--perf-events: %s\n", perf_why.c_str());
    return 1;
  }

  std::string why;
  if (!spec.layout.Validate(&why)) {
    std::fprintf(stderr, "invalid layout: %s\n", why.c_str());
    return 1;
  }

  ValidationOptions options;
  options.strict = !flags.GetBool("no-strict", false);
  options.include_hybrid = flags.GetBool("hybrid", false);
  for (std::int64_t w : flags.GetIntList("widths", {128, 256, 512})) {
    if (w != 128 && w != 256 && w != 512) {
      std::fprintf(stderr, "unsupported width %lld\n",
                   static_cast<long long>(w));
      return 1;
    }
  }
  options.widths.clear();
  for (std::int64_t w : flags.GetIntList("widths", {128, 256, 512})) {
    options.widths.push_back(static_cast<unsigned>(w));
  }

  // --- trace record / replay (32-bit interleaved layouts) ---
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string trace_in = flags.GetString("trace-in", "");
  if ((!trace_out.empty() || !trace_in.empty()) &&
      (spec.layout.key_bits != 32 || spec.layout.val_bits != 32)) {
    std::fprintf(stderr, "traces support 32-bit layouts only\n");
    return 1;
  }
  if (!trace_out.empty() || !trace_in.empty()) {
    CuckooTable32 table(spec.layout.ways, spec.layout.slots,
                        BucketsForBytes(spec.layout, spec.table_bytes),
                        spec.layout.bucket_layout, spec.run.seed);
    auto build = FillToLoadFactor(&table, spec.load_factor, spec.run.seed + 1000);

    if (!trace_out.empty()) {
      auto misses = UniqueRandomKeys<std::uint32_t>(
          std::max<std::size_t>(1024, build.inserted_keys.size() / 8),
          spec.run.seed + 77, &build.inserted_keys);
      WorkloadConfig wc;
      wc.pattern = spec.pattern;
      wc.hit_rate = spec.hit_rate;
      wc.zipf_s = spec.zipf_s;
      wc.num_queries = spec.run.queries_per_thread;
      wc.seed = spec.run.seed + 31;
      ProbeTrace<std::uint32_t> trace;
      trace.queries = GenerateQueries(build.inserted_keys, misses, wc);
      trace.hit_rate = spec.hit_rate;
      trace.table_seed = spec.run.seed;
      trace.pattern = static_cast<std::uint8_t>(spec.pattern);
      if (!SaveTraceToFile(trace, trace_out)) {
        std::fprintf(stderr, "cannot write trace to %s\n",
                     trace_out.c_str());
        return 1;
      }
      std::printf("recorded %zu probes to %s (table seed %llu)\n",
                  trace.queries.size(), trace_out.c_str(),
                  static_cast<unsigned long long>(spec.run.seed));
      return 0;
    }

    auto trace = LoadTraceFromFile<std::uint32_t>(trace_in);
    if (!trace.has_value()) {
      std::fprintf(stderr, "cannot read trace from %s\n", trace_in.c_str());
      return 1;
    }
    if (trace->table_seed != spec.run.seed) {
      std::fprintf(stderr,
                   "warning: trace was recorded against table seed %llu, "
                   "current --seed is %llu (hit rate will differ)\n",
                   static_cast<unsigned long long>(trace->table_seed),
                   static_cast<unsigned long long>(spec.run.seed));
    }
    std::printf("replaying %zu probes from %s\n", trace->queries.size(),
                trace_in.c_str());
    TablePrinter replay({"kernel", "Mlookups/s", "hits"});
    std::vector<std::uint32_t> vals(trace->queries.size());
    std::vector<std::uint8_t> found(trace->queries.size());
    std::vector<const KernelInfo*> kernels = {
        KernelRegistry::Get().Scalar(spec.layout)};
    ValidationOptions replay_opts;
    for (const DesignChoice& c :
         ValidationEngine::Enumerate(spec.layout, replay_opts)) {
      kernels.push_back(c.kernel);
    }
    for (const KernelInfo* kernel : kernels) {
      if (kernel == nullptr) continue;
      RunningStat stat;
      std::uint64_t hits = 0;
      const ProbeBatch batch =
          ProbeBatch::Of(trace->queries.data(), vals.data(), found.data(),
                         trace->queries.size());
      for (unsigned rep = 0; rep < spec.run.repeats; ++rep) {
        Timer timer;
        // Replay honors --prefetch: the pipeline is a no-op for 'none'.
        hits = PipelinedLookup(*kernel, table.view(), batch,
                               spec.run.pipeline);
        stat.Add(static_cast<double>(trace->queries.size()) /
                 timer.ElapsedSeconds() / 1e6);
      }
      replay.AddRow({kernel->name, TablePrinter::Fmt(stat.mean(), 1),
                     TablePrinter::Fmt(hits)});
    }
    replay.Print();
    return 0;
  }

  const bool csv = flags.GetBool("csv", false);
  if (!csv) {
    std::printf("SimdHT-Bench\nCPU: %s\n\n",
                GetCpuFeatures().ToString().c_str());
    std::printf("-- validation engine --\n%s: %s\n\n",
                spec.layout.ToString().c_str(),
                ValidationEngine::ListingLine(
                    spec.layout,
                    ValidationEngine::Enumerate(spec.layout, options))
                    .c_str());
    std::printf("-- performance engine --\n");
  }

  CaseResult result;
  try {
    result = RunCaseAuto(spec, options);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  RunReport report;
  const bool want_report = !json_path.empty() || !timeline_path.empty();
  if (want_report) {
    report = NewRunReport("simdht", "simdht CLI ad-hoc case");
    for (const auto& [name, value] : flags.items()) {
      report.flags.emplace_back(name, value);
    }
    report.options.emplace_back("layout", spec.layout.ToString());
    report.options.emplace_back("table_bytes",
                                std::to_string(spec.table_bytes));
    report.options.emplace_back("pattern", pattern);
    report.options.emplace_back("threads",
                                std::to_string(result.threads));
    report.options.emplace_back("repeats",
                                std::to_string(spec.run.repeats));
    report.options.emplace_back("seed", std::to_string(spec.run.seed));
    AppendCaseResult(&report, result,
                     {{"layout", spec.layout.ToString()},
                      {"pattern", pattern},
                      {"table_bytes", std::to_string(spec.table_bytes)}},
                     spec.run.sample_ms);
  }

  std::vector<std::string> headers = {"kernel", "approach", "width",
                                      "Mlookups/s/core", "stddev",
                                      "hit rate", "speedup vs scalar"};
  if (spec.run.perf.enabled) {
    headers.insert(headers.end(),
                   {"cycles/lookup", "IPC", "LLC-miss/lookup", "perf src"});
  }
  TablePrinter table(std::move(headers));
  for (const MeasuredKernel& k : result.kernels) {
    std::vector<std::string> row = {
        k.name, ApproachName(k.approach),
        k.approach == Approach::kScalar
            ? "-"
            : TablePrinter::Fmt(std::int64_t{k.width_bits}),
        TablePrinter::Fmt(k.mlps_per_core, 1),
        TablePrinter::Fmt(k.stddev_mlps, 1),
        TablePrinter::Fmt(k.hit_fraction, 3),
        TablePrinter::Fmt(k.speedup, 2)};
    if (spec.run.perf.enabled) {
      const DerivedPerf d = k.Derived();
      row.push_back(FormatPerfValue(d.cycles_per_op, d.estimated, 1));
      row.push_back(FormatPerfValue(d.ipc, false, 2));
      row.push_back(FormatPerfValue(d.llc_misses_per_op, false, 3));
      row.push_back(!k.perf_collected ? "-" : d.estimated ? "tsc-est" : "hw");
    }
    table.AddRow(std::move(row));
  }
  if (csv) {
    table.PrintCsv();
  } else {
    table.Print();
    std::printf(
        "\ntable: %s buckets over %s; achieved load factor %.2f; %u "
        "threads, %s table\n",
        HumanCount(static_cast<double>(
                       BucketsForBytes(spec.layout, spec.table_bytes)))
            .c_str(),
        HumanBytes(static_cast<double>(result.actual_table_bytes)).c_str(),
        result.achieved_load_factor, result.threads,
        spec.shared_table ? "shared" : "per-core");
  }
  if (want_report) {
    return WriteReportOutputs(report, json_path, timeline_path, csv);
  }
  return 0;
}
