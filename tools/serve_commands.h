// `simdht serve` / `simdht loadgen`: real-TCP serving subcommands.
#ifndef SIMDHT_TOOLS_SERVE_COMMANDS_H_
#define SIMDHT_TOOLS_SERVE_COMMANDS_H_

#include "common/flags.h"

namespace simdht {

// `simdht serve`: one KVS server process on a TCP port. Prints
// "listening on HOST:PORT" (flushed) so scripts can scrape the port, then
// runs until SIGINT/SIGTERM or a SHUTDOWN frame.
int RunServeCommand(const Flags& flags);

// `simdht loadgen`: open-loop (or closed-loop) Multi-Get load against a
// cluster of serve processes; emits latency percentiles and per-server
// phase stats, optionally as a RunReport (--json).
int RunLoadgenCommand(const Flags& flags);

// `simdht top`: poll a serve process's STATS and render the rolling-window
// dashboard (QPS, windowed tails, batch occupancy, shard skew).
int RunTopCommand(const Flags& flags);

void ServeUsage();
void LoadgenUsage();
void TopUsage();

}  // namespace simdht

#endif  // SIMDHT_TOOLS_SERVE_COMMANDS_H_
