#include "serve_commands.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/cpu_features.h"
#include "common/table_printer.h"
#include "kvs/memc3_backend.h"
#include "kvs/simd_backend.h"
#include "net/kv_tcp_server.h"
#include "net/open_loop.h"
#include "obs/run_report.h"
#include "obs/timeline.h"

namespace simdht {
namespace {

std::uint64_t ParseByteSize(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != nullptr) {
    switch (*end) {
      case 'k': case 'K': v *= 1 << 10; break;
      case 'm': case 'M': v *= 1 << 20; break;
      case 'g': case 'G': v *= 1 << 30; break;
      default: break;
    }
  }
  return static_cast<std::uint64_t>(v);
}

std::unique_ptr<KvBackend> MakeBackend(const std::string& name,
                                       std::uint64_t entries,
                                       std::size_t mem_bytes) {
  const CpuFeatures& cpu = GetCpuFeatures();
  if (name == "memc3") {
    return std::make_unique<Memc3Backend>(entries, mem_bytes);
  }
  if (name == "memc3-sse") {
    return std::make_unique<Memc3Backend>(entries, mem_bytes,
                                          /*simd_tags=*/true);
  }
  if (name == "hor-avx2") {
    if (!cpu.Supports(SimdLevel::kAvx2)) return nullptr;
    return std::make_unique<SimdBackend>(SimdBackend::BucketCuckooHorAvx2(),
                                         entries, mem_bytes);
  }
  if (name == "ver-avx512") {
    if (!cpu.Supports(SimdLevel::kAvx512)) return nullptr;
    return std::make_unique<SimdBackend>(SimdBackend::CuckooVerAvx512(),
                                         entries, mem_bytes);
  }
  return nullptr;
}

std::atomic<KvTcpServer*> g_serve_server{nullptr};
std::atomic<bool> g_top_stop{false};

void HandleStopSignal(int) {
  g_top_stop.store(true);
  if (KvTcpServer* server = g_serve_server.load()) server->Stop();
}

bool ParseServerList(const std::string& list,
                     std::vector<KvClusterClient::Endpoint>* out,
                     std::string* err) {
  out->clear();
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string_view item(list.data() + start, comma - start);
    if (!item.empty()) {
      KvClusterClient::Endpoint ep;
      if (!ParseEndpoint(item, &ep.host, &ep.port, err)) return false;
      out->push_back(std::move(ep));
    }
    start = comma + 1;
  }
  if (out->empty()) {
    if (err) *err = "--servers is empty";
    return false;
  }
  return true;
}

double StatValue(const StatsPairs& stats, std::string_view name) {
  for (const auto& [n, v] : stats) {
    if (n == name) return v;
  }
  return 0;
}

}  // namespace

void ServeUsage() {
  std::fprintf(
      stderr,
      "usage: simdht serve [options]\n"
      "  --host=H            bind address (default 127.0.0.1)\n"
      "  --port=P            TCP port; 0 picks an ephemeral port\n"
      "                      (the chosen port is printed, default 0)\n"
      "  --backend=B         memc3 | memc3-sse | hor-avx2 | ver-avx512\n"
      "                      (default memc3; SIMD backends need CPU "
      "support)\n"
      "  --entries=N         hash-table entry capacity (default 2M)\n"
      "  --mem=S             value-store memory, e.g. 1G (default 1G)\n"
      "  --max-batch-keys=N  cross-connection batch flush bound (default "
      "8192)\n"
      "  --metrics-port=P    serve Prometheus text over plain HTTP on this\n"
      "                      port (GET /metrics; 0 picks ephemeral, the\n"
      "                      chosen port is printed)\n"
      "  --window-ms=N       rolling-window interval (default 1000)\n"
      "  --window-count=N    intervals kept in the window (default 8)\n"
      "  --trace=PATH        record server-side spans for sampled traced\n"
      "                      requests; written as Chrome trace JSON on "
      "exit\n"
      "runs until SIGINT/SIGTERM or a client SHUTDOWN frame; prints a\n"
      "parseable 'listening on HOST:PORT' line once the socket is ready.\n");
}

int RunServeCommand(const Flags& flags) {
  const std::string backend_name = flags.GetString("backend", "memc3");
  const std::uint64_t entries =
      flags.GetUint64("entries", std::uint64_t{2} << 20);
  const std::size_t mem_bytes = static_cast<std::size_t>(
      ParseByteSize(flags.GetString("mem", "1G")));
  std::unique_ptr<KvBackend> backend =
      MakeBackend(backend_name, entries, mem_bytes);
  if (!backend) {
    std::fprintf(stderr,
                 "unknown or unsupported --backend '%s' (memc3, memc3-sse, "
                 "hor-avx2, ver-avx512)\n",
                 backend_name.c_str());
    return 1;
  }

  KvTcpServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(flags.GetInt("port", 0));
  options.max_batch_keys =
      static_cast<std::size_t>(flags.GetInt("max-batch-keys", 8192));
  options.window_interval_ms =
      static_cast<std::uint64_t>(flags.GetInt("window-ms", 1000));
  options.window_intervals =
      static_cast<unsigned>(flags.GetInt("window-count", 8));
  options.enable_metrics_http = flags.Has("metrics-port");
  options.metrics_http_port =
      static_cast<std::uint16_t>(flags.GetInt("metrics-port", 0));

  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) Timeline::Global().Enable();

  KvTcpServer server(backend.get(), options);
  std::string err;
  if (!server.Listen(&err)) {
    std::fprintf(stderr, "serve: %s\n", err.c_str());
    return 1;
  }
  // Scripts scrape this exact line for the ephemeral port.
  std::printf("simdht serve: listening on %s:%u (backend %s)\n",
              options.host.c_str(), server.port(), backend->name());
  if (options.enable_metrics_http) {
    // Same contract: scripts scrape this line for the metrics port.
    std::printf("simdht serve: metrics on %s:%u\n", options.host.c_str(),
                server.metrics_port());
  }
  std::fflush(stdout);

  g_serve_server.store(&server);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  server.Run();
  g_serve_server.store(nullptr);

  const StatsPairs stats = server.StatsSnapshot();
  std::printf(
      "simdht serve: exiting; %.0f batches, %.0f keys (%.0f hits), "
      "batch occupancy mean %.2f conns / %.1f keys\n",
      StatValue(stats, "batches"), StatValue(stats, "keys"),
      StatValue(stats, "hits"), StatValue(stats, "batch_connections.mean"),
      StatValue(stats, "batch_keys.mean"));
  if (!trace_path.empty()) {
    if (!Timeline::Global().WriteToFile(trace_path, &err)) {
      std::fprintf(stderr, "serve: cannot write trace: %s\n", err.c_str());
      return 1;
    }
    std::printf("simdht serve: wrote %zu trace events to %s\n",
                Timeline::Global().event_count(), trace_path.c_str());
  }
  return 0;
}

void LoadgenUsage() {
  std::fprintf(
      stderr,
      "usage: simdht loadgen --servers=H:P[,H:P...] [options]\n"
      "  --servers=LIST      serve endpoints, comma separated (required)\n"
      "  --clients=N         driver threads (default 2)\n"
      "  --arrival=A         closed | uniform | poisson (default uniform)\n"
      "  --qps=N             aggregate intended Multi-Get rate for the\n"
      "                      open-loop modes (default 20000)\n"
      "  --seconds=S         run length; requests = qps*seconds (default "
      "2)\n"
      "  --requests=N        per-client request count (overrides "
      "--seconds)\n"
      "  --num-keys=N        key population (default 100000)\n"
      "  --key-size=B --val-size=B   (defaults 20 / 32, the paper's sizes)\n"
      "  --mget=N            keys per Multi-Get (default 16)\n"
      "  --pattern=P         zipf | uniform (default zipf)\n"
      "  --hit-rate=F        probe selectivity (default 0.95)\n"
      "  --seed=N            schedule/workload seed (default 1)\n"
      "  --no-preload        skip the SET preload phase\n"
      "  --stop-servers      send SHUTDOWN to every server afterwards\n"
      "  --json=PATH         write a RunReport (client row + one row per\n"
      "                      server; diff with simdht_compare)\n"
      "  --trace-sample=N    send one Multi-Get in N as a traced request\n"
      "                      (client spans + clock-sync samples; needs\n"
      "                      servers that advertise proto.trace_context)\n"
      "  --trace-out=PATH    write the client-side Chrome trace JSON\n"
      "                      (implies --trace-sample=16 if unset; merge\n"
      "                      with the server's --trace file via\n"
      "                      simdht_tracemerge)\n"
      "  --csv               machine-readable tables\n");
}

int RunLoadgenCommand(const Flags& flags) {
  std::string err;
  TcpLoadgenConfig config;
  if (!ParseServerList(flags.GetString("servers", ""), &config.servers,
                       &err)) {
    std::fprintf(stderr, "loadgen: %s\n", err.c_str());
    LoadgenUsage();
    return 1;
  }
  config.clients = static_cast<unsigned>(flags.GetInt("clients", 2));
  config.num_keys =
      static_cast<std::size_t>(flags.GetInt("num-keys", 100000));
  config.key_size = static_cast<std::size_t>(flags.GetInt("key-size", 20));
  config.val_size = static_cast<std::size_t>(flags.GetInt("val-size", 32));
  config.mget_size = static_cast<unsigned>(flags.GetInt("mget", 16));
  config.hit_rate = flags.GetDouble("hit-rate", 0.95);
  config.zipf = flags.GetString("pattern", "zipf") != "uniform";
  config.zipf_s = flags.GetDouble("zipf-s", 0.99);
  config.seed = flags.GetUint64("seed", 1);
  config.preload = !flags.GetBool("no-preload", false);
  config.target_qps = flags.GetDouble("qps", 20000);
  config.trace_sample =
      static_cast<unsigned>(flags.GetInt("trace-sample", 0));
  const std::string trace_out_path = flags.GetString("trace-out", "");
  if (!trace_out_path.empty()) {
    Timeline::Global().Enable();
    if (config.trace_sample == 0) config.trace_sample = 16;
  }

  const std::string arrival = flags.GetString("arrival", "uniform");
  if (!ParseArrivalMode(arrival, &config.arrival)) {
    std::fprintf(stderr, "loadgen: unknown --arrival '%s'\n",
                 arrival.c_str());
    return 1;
  }

  const double seconds = flags.GetDouble("seconds", 2.0);
  if (flags.Has("requests")) {
    config.requests_per_client =
        static_cast<std::size_t>(flags.GetInt("requests", 2000));
  } else if (config.arrival != ArrivalMode::kClosedLoop) {
    config.requests_per_client = static_cast<std::size_t>(
        config.target_qps * seconds / config.clients);
  } else {
    config.requests_per_client = 2000;
  }
  if (config.requests_per_client == 0) config.requests_per_client = 1;

  TcpLoadgenResult result;
  if (!RunTcpLoadgen(config, &result, &err)) {
    std::fprintf(stderr, "loadgen: %s\n", err.c_str());
    return 1;
  }

  const bool csv = flags.GetBool("csv", false);
  TablePrinter client({"arrival", "intended QPS", "achieved QPS",
                       "requests", "key errors", "mean us", "p50 us",
                       "p99 us", "p999 us", "p9999 us", "max lag us"});
  client.AddRow({ArrivalModeName(config.arrival),
                 TablePrinter::Fmt(result.intended_qps, 0),
                 TablePrinter::Fmt(result.achieved_qps, 0),
                 TablePrinter::Fmt(static_cast<std::int64_t>(result.requests)),
                 TablePrinter::Fmt(
                     static_cast<std::int64_t>(result.key_errors)),
                 TablePrinter::Fmt(result.mget_mean_us, 1),
                 TablePrinter::Fmt(result.mget_p50_us, 1),
                 TablePrinter::Fmt(result.mget_p99_us, 1),
                 TablePrinter::Fmt(result.mget_p999_us, 1),
                 TablePrinter::Fmt(result.mget_p9999_us, 1),
                 TablePrinter::Fmt(result.max_send_lag_us, 1)});

  TablePrinter servers({"server", "batches", "keys", "hits",
                        "batch conns (mean/max)", "batch keys (mean)",
                        "probe p99 us", "probe p999 us"});
  for (std::size_t s = 0; s < result.server_stats.size(); ++s) {
    const StatsPairs& stats = result.server_stats[s];
    if (stats.empty()) {
      servers.AddRow({TablePrinter::Fmt(static_cast<std::int64_t>(s)),
                      "down", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    servers.AddRow(
        {TablePrinter::Fmt(static_cast<std::int64_t>(s)),
         TablePrinter::Fmt(StatValue(stats, "batches"), 0),
         TablePrinter::Fmt(StatValue(stats, "keys"), 0),
         TablePrinter::Fmt(StatValue(stats, "hits"), 0),
         TablePrinter::Fmt(StatValue(stats, "batch_connections.mean"), 2) +
             "/" +
             TablePrinter::Fmt(StatValue(stats, "batch_connections.max"),
                               0),
         TablePrinter::Fmt(StatValue(stats, "batch_keys.mean"), 1),
         TablePrinter::Fmt(StatValue(stats, "index_probe_ns.p99") / 1e3, 2),
         TablePrinter::Fmt(StatValue(stats, "index_probe_ns.p999") / 1e3,
                           2)});
  }
  if (csv) {
    client.PrintCsv();
    servers.PrintCsv();
  } else {
    std::printf("client-observed Multi-Get latency (end to end over TCP)\n");
    client.Print();
    std::printf("\nserver-side serving stats (over the wire via STATS)\n");
    servers.Print();
  }

  if (config.trace_sample > 0) {
    if (result.trace_supported) {
      std::printf(
          "\ntracing: %llu of %llu requests traced (1 in %u)\n",
          static_cast<unsigned long long>(result.traced_requests),
          static_cast<unsigned long long>(result.requests),
          config.trace_sample);
    } else {
      std::fprintf(stderr,
                   "loadgen: servers do not advertise proto.trace_context; "
                   "ran untraced\n");
    }
  }
  if (!trace_out_path.empty()) {
    if (!Timeline::Global().WriteToFile(trace_out_path, &err)) {
      std::fprintf(stderr, "loadgen: cannot write trace: %s\n",
                   err.c_str());
      return 1;
    }
    std::printf("tracing: wrote %zu client trace events to %s\n",
                Timeline::Global().event_count(), trace_out_path.c_str());
  }

  if (flags.GetBool("stop-servers", false)) {
    KvClusterClient stopper(config.servers);
    if (stopper.Connect(nullptr)) stopper.ShutdownAll();
  }

  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    RunReport report =
        NewRunReport("simdht-loadgen", "TCP serving: open-loop Multi-Get");
    for (const auto& [name, value] : flags.items()) {
      report.flags.emplace_back(name, value);
    }
    report.options.emplace_back("arrival", ArrivalModeName(config.arrival));
    report.options.emplace_back("servers",
                                std::to_string(config.servers.size()));
    report.options.emplace_back("clients",
                                std::to_string(config.clients));
    report.options.emplace_back("mget", std::to_string(config.mget_size));
    report.options.emplace_back("seed", std::to_string(config.seed));

    ResultRow row;
    row.kernel = "tcp-loadgen";
    row.config = {{"arrival", ArrivalModeName(config.arrival)},
                  {"mget", std::to_string(config.mget_size)},
                  {"servers", std::to_string(config.servers.size())}};
    const auto metric = [&row](const char* name, double v) {
      row.metrics.emplace_back(name, MetricStat{v, 0.0});
    };
    metric("intended_qps", result.intended_qps);
    metric("achieved_qps", result.achieved_qps);
    metric("requests", static_cast<double>(result.requests));
    metric("key_errors", static_cast<double>(result.key_errors));
    metric("mget_mean_us", result.mget_mean_us);
    metric("mget_p50_us", result.mget_p50_us);
    metric("mget_p95_us", result.mget_p95_us);
    metric("mget_p99_us", result.mget_p99_us);
    metric("mget_p999_us", result.mget_p999_us);
    metric("mget_p9999_us", result.mget_p9999_us);
    metric("max_send_lag_us", result.max_send_lag_us);
    report.results.push_back(std::move(row));

    for (std::size_t s = 0; s < result.server_stats.size(); ++s) {
      ResultRow server_row;
      server_row.kernel = "tcp-server";
      server_row.config = {{"server", std::to_string(s)}};
      for (const auto& [name, value] : result.server_stats[s]) {
        server_row.metrics.emplace_back(name, MetricStat{value, 0.0});
      }
      report.results.push_back(std::move(server_row));
    }
    return WriteReportOutputs(report, json_path, "", csv);
  }
  return 0;
}

void TopUsage() {
  std::fprintf(
      stderr,
      "usage: simdht top --server=H:P [options]\n"
      "  --server=H:P        serve endpoint to watch (required)\n"
      "  --interval-ms=N     poll period (default 1000)\n"
      "  --iterations=N      polls before exiting; 0 = until SIGINT\n"
      "                      (default 0)\n"
      "polls STATS over the KV wire and renders the rolling-window view:\n"
      "QPS, windowed tail latencies, batch occupancy, hit rate, and\n"
      "per-shard probe skew.\n");
}

int RunTopCommand(const Flags& flags) {
  const std::string server_flag = flags.GetString("server", "");
  std::string host;
  std::uint16_t port = 0;
  std::string err;
  if (server_flag.empty() || !ParseEndpoint(server_flag, &host, &port, &err)) {
    std::fprintf(stderr, "top: bad --server '%s'%s%s\n", server_flag.c_str(),
                 err.empty() ? "" : ": ", err.c_str());
    TopUsage();
    return 1;
  }
  const int interval_ms = flags.GetInt("interval-ms", 1000);
  const int iterations = flags.GetInt("iterations", 0);

  KvTcpClient client;
  if (!client.Connect(host, port, &err)) {
    std::fprintf(stderr, "top: cannot connect to %s: %s\n",
                 server_flag.c_str(), err.c_str());
    return 1;
  }
  g_top_stop.store(false);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  for (int i = 0; (iterations == 0 || i < iterations) && !g_top_stop.load();
       ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      if (g_top_stop.load()) break;
    }
    StatsPairs stats;
    if (!client.Stats(&stats, &err)) {
      // The connection drops once on server restart; try to re-establish.
      if (!client.Connect(host, port, nullptr)) {
        std::fprintf(stderr, "top: lost %s: %s\n", server_flag.c_str(),
                     err.c_str());
        return 1;
      }
      if (!client.Stats(&stats, &err)) {
        std::fprintf(stderr, "top: %s\n", err.c_str());
        return 1;
      }
    }
    const auto v = [&stats](const char* name) {
      return StatValue(stats, name);
    };
    std::printf(
        "-- simdht top: %s  (window %.1fs)\n"
        "   load     %10.0f req/s  %10.0f keys/s  hit rate %5.1f%%  "
        "(lifetime: %.0f requests, %.0f keys)\n"
        "   batches  conns mean %.2f max %.0f   keys mean %.1f max %.0f   "
        "dispatch p99 %.0f us (%.1f events mean)\n",
        server_flag.c_str(), v("win.window_s"), v("win.requests_per_s"),
        v("win.keys_per_s"), 100.0 * v("win.hit_rate"), v("requests"),
        v("keys"), v("win.batch_connections.mean"),
        v("win.batch_connections.max"), v("win.batch_keys.mean"),
        v("win.batch_keys.max"), v("win.dispatch_us.p99"),
        v("win.dispatch_events.mean"));
    const struct {
      const char* label;
      const char* prefix;
    } phases[] = {{"parse", "win.parse_ns"},
                  {"probe", "win.index_probe_ns"},
                  {"copy", "win.value_copy_ns"},
                  {"transport", "win.transport_ns"}};
    std::printf("   phase us (windowed)   p50      p90      p99     p999\n");
    for (const auto& phase : phases) {
      const std::string p(phase.prefix);
      std::printf("   %-9s %12.2f %8.2f %8.2f %8.2f\n", phase.label,
                  StatValue(stats, p + ".p50") / 1e3,
                  StatValue(stats, p + ".p90") / 1e3,
                  StatValue(stats, p + ".p99") / 1e3,
                  StatValue(stats, p + ".p999") / 1e3);
    }
    const int shards = static_cast<int>(v("shards"));
    if (shards > 0) {
      // Shard skew: a shard serving far more than its fair share of hits
      // (or leaning on its stash) is the saturation early-warning.
      double total_hits = 0, max_hits = 0, stash = 0;
      for (int s = 0; s < shards; ++s) {
        const std::string prefix = "shard." + std::to_string(s);
        const double h = StatValue(stats, (prefix + ".hits").c_str());
        total_hits += h;
        max_hits = std::max(max_hits, h);
        stash += StatValue(stats, (prefix + ".stash_hits").c_str());
      }
      const double fair = shards > 0 ? total_hits / shards : 0;
      std::printf(
          "   shards   %d  skew (max/fair) %.2f  stash hits %.0f\n", shards,
          fair > 0 ? max_hits / fair : 0.0, stash);
    }
    std::fflush(stdout);
  }
  client.Close();
  return 0;
}

}  // namespace simdht
