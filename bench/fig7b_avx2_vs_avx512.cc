// Fig 7(b) / Case Study 3: AVX2 vs AVX-512 vector widths.
//
// Contrasts, at half and full core subscription:
//   * 3-way cuckoo vertical: 8 keys/iter (AVX2) vs 16 keys/iter (AVX-512)
//   * (2,8) BCHT horizontal: chunked one-bucket-at-a-time AVX2 probes vs a
//     whole bucket per AVX-512 load
// Paper shape: doubling the vector width buys at most ~25% for vertical on
// cache-resident tables, nothing for memory-bound ones; for BCHT the wider
// probe is not a significant win.
#include "bench_common.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Fig 7(b) / Case Study 3: AVX2 vs AVX-512", opt);
  ReportSession session(opt, "Fig 7(b): AVX2 vs AVX-512 vector widths");

  const unsigned all_threads = opt.threads
                                   ? opt.threads
                                   : static_cast<unsigned>(HardwareThreads());
  const unsigned half_threads = all_threads > 1 ? all_threads / 2 : 1;

  TablePrinter table({"layout", "HT size", "threads", "kernel",
                      "Mlookups/s/core", "speedup vs scalar"});

  for (const std::uint64_t bytes :
       {std::uint64_t{1} << 20, std::uint64_t{16} << 20}) {
    for (const unsigned threads : {half_threads, all_threads}) {
      for (const LayoutSpec& layout :
           {Layout(3, 1), Layout(2, 8), LayoutSpec::Swiss(32, 32)}) {
        CaseSpec spec = PaperCaseDefaults(opt);
        spec.layout = layout;
        spec.table_bytes = bytes;
        spec.run.threads = threads;

        // Explicit kernels: include the non-strict chunked AVX2 probe for
        // (2,8), which the strict validator (Listing 1) excludes.
        ValidationOptions options;
        options.strict = false;
        options.widths = {256, 512};
        const CaseResult result = RunCaseAuto(spec, options);
        session.AddCase(result,
                        {{"layout", layout.ToString()},
                         {"ht_size", std::to_string(bytes)},
                         {"threads", std::to_string(threads)}});
        for (const MeasuredKernel& k : result.kernels) {
          table.AddRow({layout.ToString(),
                        HumanBytes(static_cast<double>(bytes)),
                        TablePrinter::Fmt(std::int64_t{threads}), k.name,
                        TablePrinter::Fmt(k.mlps_per_core, 1),
                        k.approach == Approach::kScalar
                            ? "1.00"
                            : TablePrinter::Fmt(k.speedup, 2)});
        }
      }
    }
  }
  Emit(table, opt);
  return session.Finish();
}
