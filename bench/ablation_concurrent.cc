// Concurrent structural writes vs SIMD batch lookups (library extension).
//
// ConcurrentCuckooTable allows full inserts/erases (BFS path displacement)
// to race epoch-validated batch lookups. This bench measures what a
// continuous insert/erase churn costs the readers — the step beyond
// ablation_mixed_rw's in-place value updates, completing the paper's
// Section VII future-work axis.
//
// --shards=1,2,4,8 sweeps the shard count: with S > 1 the table is a
// ShardedTable (per-shard seeds and writer locks), batches partition by
// shard before hitting the kernel, and the writer's churn contends with
// readers only on the shard it routes to. The shard count lands in both
// the printed table and the RunReport config so tools/simdht_compare can
// diff shard configs.
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "ht/sharded_table.h"

using namespace simdht;
using namespace simdht::bench;

namespace {

struct ChurnResult {
  double idle_mlps = 0;
  double churn_mlps = 0;
  double churn_ops = 0;  // writer inserts+erases per second (K)
};

// pace_per_ms = writer ops per millisecond (0 = unthrottled).
ChurnResult RunChurnCase(const LayoutSpec& layout, const KernelInfo* kernel,
                         unsigned shards, std::size_t queries,
                         unsigned repeats, std::uint64_t seed,
                         unsigned pace_per_ms) {
  ShardedTable32 table(shards, layout.ways, layout.slots,
                       BucketsForBytes(layout, 1 << 20),
                       layout.bucket_layout, seed);
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> resident;
  while (table.load_factor() < 0.7) {
    const auto key = static_cast<std::uint32_t>(rng.Next()) | 1;
    if (!table.Insert(key, key + 1)) break;
    resident.push_back(key);
  }
  // Probe stream: resident keys (lookup results stay verifiable even
  // though the churn writer uses disjoint keys).
  std::vector<std::uint32_t> probes;
  probes.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    probes.push_back(resident[rng.NextBounded(resident.size())]);
  }
  std::vector<std::uint32_t> vals(probes.size());
  std::vector<std::uint8_t> found(probes.size());

  const auto lookup = [&](const TableView& view, const std::uint32_t* keys,
                          std::uint32_t* out_vals, std::uint8_t* out_found,
                          std::size_t n) {
    return kernel->Lookup(view, ProbeBatch::Of(keys, out_vals, out_found, n));
  };
  ChurnResult result;
  RunningStat idle, churn, ops;
  for (unsigned rep = 0; rep < repeats; ++rep) {
    {
      Timer t;
      table.BatchLookup(lookup, probes.data(), vals.data(), found.data(),
                        probes.size());
      idle.Add(static_cast<double>(probes.size()) / t.ElapsedSeconds() /
               1e6);
    }
    {
      std::atomic<bool> stop{false};
      std::atomic<std::uint64_t> writer_ops{0};
      std::thread writer([&] {
        // Insert/erase churn over a disjoint key range (high bit set).
        Xoshiro256 wrng(seed + rep + 1);
        std::vector<std::uint32_t> churn_keys;
        std::uint64_t count = 0;
        unsigned burst = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (pace_per_ms != 0 && ++burst >= pace_per_ms) {
            burst = 0;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          if (churn_keys.size() < 512) {
            const std::uint32_t k =
                (static_cast<std::uint32_t>(wrng.Next()) | 0x80000001u);
            if (table.Insert(k, 1)) churn_keys.push_back(k);
          } else {
            table.Erase(churn_keys.back());
            churn_keys.pop_back();
          }
          ++count;
        }
        writer_ops.store(count);
      });
      Timer t;
      table.BatchLookup(lookup, probes.data(), vals.data(), found.data(),
                        probes.size());
      const double secs = t.ElapsedSeconds();
      stop.store(true);
      writer.join();
      churn.Add(static_cast<double>(probes.size()) / secs / 1e6);
      ops.Add(static_cast<double>(writer_ops.load()) / secs / 1e3);
    }
  }
  result.idle_mlps = idle.mean();
  result.churn_mlps = churn.mean();
  result.churn_ops = ops.mean();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Concurrent structural churn vs batch lookups", opt);
  ReportSession session(opt, "Concurrent structural churn vs lookups");

  const std::size_t queries =
      opt.queries_per_thread ? opt.queries_per_thread
                             : (opt.quick ? (1u << 19) : (1u << 21));
  const unsigned repeats = opt.repeats ? opt.repeats : (opt.quick ? 3 : 5);

  TablePrinter table({"shards", "writer pace", "layout", "kernel",
                      "idle Mlps", "under churn Mlps", "churn Kops/s",
                      "reader slowdown"});
  struct Pace {
    const char* label;
    unsigned per_ms;
  };
  // ~50 K structural ops/s is an aggressive but realistic KVS write rate;
  // "unthrottled" is the adversarial worst case for epoch validation.
  const Pace paces[] = {{"50 Kops/s", 50}, {"unthrottled", 0}};
  for (const unsigned shards : opt.shard_sweep) {
    for (const Pace& pace : paces) {
      for (const LayoutSpec& layout : {Layout(2, 4), Layout(3, 1)}) {
        std::vector<const KernelInfo*> kernels = {
            KernelRegistry::Get().Scalar(layout)};
        for (const DesignChoice& c : ValidationEngine::Enumerate(layout)) {
          kernels.push_back(c.kernel);
        }
        for (const KernelInfo* kernel : kernels) {
          if (kernel == nullptr) continue;
          const ChurnResult r = RunChurnCase(layout, kernel, shards, queries,
                                             repeats, opt.seed, pace.per_ms);
          session.AddRow(
              kernel->name,
              {{"shards", std::to_string(shards)},
               {"pace", pace.label},
               {"layout", layout.ToString()}},
              {{"idle_mlps", ReportSession::Stat(r.idle_mlps)},
               {"churn_mlps", ReportSession::Stat(r.churn_mlps)},
               {"churn_kops", ReportSession::Stat(r.churn_ops)}});
          table.AddRow(
              {std::to_string(shards), pace.label, layout.ToString(),
               kernel->name, TablePrinter::Fmt(r.idle_mlps, 1),
               TablePrinter::Fmt(r.churn_mlps, 1),
               TablePrinter::Fmt(r.churn_ops, 1),
               TablePrinter::Fmt((1.0 - r.churn_mlps / r.idle_mlps) * 100.0,
                                 1) +
                   "%"});
        }
      }
    }
  }
  Emit(table, opt);
  return session.Finish();
}
