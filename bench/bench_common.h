// Shared scaffolding for the figure/table reproduction binaries.
//
// Every binary accepts:
//   --quick          smaller sweeps (default: on; --full for paper-scale)
//   --threads=N      worker threads (default: all hardware threads)
//   --queries=N      probe-stream length per thread per repetition
//   --repeats=N      repetitions averaged (paper protocol: 5)
//   --csv            machine-readable output
//   --seed=N         workload/table seed
//   --prefetch=P     none | group | amac: also measure kernels through the
//                    prefetch pipeline (binaries that RunCase)
//   --group-size=N   keys per prefetch group (default 32)
//   --amac-groups=G  prefetch groups in flight for amac (default 4)
//   --perf           attach hardware counters per worker and add
//                    cycles/lookup, IPC, LLC-miss and dTLB-miss columns
//                    (TSC-estimated cycles, marked "~", where
//                    perf_event_open is unavailable)
//   --perf-events=L  comma list to restrict the event set, e.g.
//                    cycles,instructions,llc-misses
//   --json=PATH      write a structured RunReport (schema, provenance, one
//                    row per kernel x config) — diffable via simdht_compare
//   --timeline=PATH  record a Chrome/Perfetto trace of build/warmup/rep
//                    spans (load at ui.perfetto.dev)
//   --sample-ms=N    snapshot per-worker progress every N ms into the
//                    report's sample series (0 = off)
//   --shards=LIST    table shards (comma list, e.g. 1,2,4,8). Case runners
//                    use the first value; sweep-aware binaries (e.g.
//                    ablation_concurrent) measure every value as a config
//                    column.
#ifndef SIMDHT_BENCH_BENCH_COMMON_H_
#define SIMDHT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/cpu_features.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/case_report.h"
#include "core/case_runner.h"
#include "core/mixed_runner.h"
#include "obs/run_report.h"
#include "obs/timeline.h"
#include "perf/perf_events.h"

namespace simdht {
namespace bench {

struct BenchOptions {
  bool quick = true;
  bool csv = false;
  unsigned threads = 0;
  std::size_t queries_per_thread = 0;  // 0 = per-binary default
  unsigned repeats = 0;                // 0 = per-binary default
  std::uint64_t seed = 42;
  PipelineConfig pipeline;  // kNone = direct-only measurements
  PerfOptions perf;         // disabled = wall-clock-only measurements
  std::string json_path;      // --json: RunReport destination ("" = off)
  std::string timeline_path;  // --timeline: trace destination ("" = off)
  unsigned sample_ms = 0;     // --sample-ms: progress-sampling period
  unsigned shards = 1;                      // first --shards value
  std::vector<unsigned> shard_sweep = {1};  // full --shards list, in order
  std::string tool;           // binary basename, stamped into reports
  StringPairs raw_flags;      // every --name=value pair as parsed
};

inline BenchOptions ParseBenchOptions(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions opt;
  opt.quick = !flags.GetBool("full", false) && flags.GetBool("quick", true);
  opt.csv = flags.GetBool("csv", false);
  opt.threads = static_cast<unsigned>(flags.GetInt("threads", 0));
  opt.queries_per_thread =
      static_cast<std::size_t>(flags.GetInt("queries", 0));
  opt.repeats = static_cast<unsigned>(flags.GetInt("repeats", 0));
  opt.seed = flags.GetUint64("seed", 42);
  const std::string prefetch = flags.GetString("prefetch", "none");
  if (!ParsePrefetchPolicy(prefetch, &opt.pipeline.policy)) {
    std::fprintf(stderr, "unknown --prefetch '%s', using 'none'\n",
                 prefetch.c_str());
  }
  opt.pipeline.group_size =
      static_cast<unsigned>(flags.GetInt("group-size", 32));
  opt.pipeline.amac_groups =
      static_cast<unsigned>(flags.GetInt("amac-groups", 4));
  opt.perf.enabled =
      flags.GetBool("perf", false) || flags.Has("perf-events");
  std::string perf_why;
  if (!ParsePerfEventList(flags.GetString("perf-events", ""),
                          &opt.perf.events, &perf_why)) {
    std::fprintf(stderr, "--perf-events: %s; using the default set\n",
                 perf_why.c_str());
    opt.perf.events = DefaultPerfEvents();
  }
  opt.json_path = flags.GetString("json", "");
  opt.timeline_path = flags.GetString("timeline", "");
  opt.sample_ms = static_cast<unsigned>(flags.GetInt("sample-ms", 0));
  opt.shard_sweep.clear();
  for (std::int64_t s : flags.GetIntList("shards", {1})) {
    if (s < 1) {
      std::fprintf(stderr, "--shards values must be >= 1; ignoring %lld\n",
                   static_cast<long long>(s));
      continue;
    }
    opt.shard_sweep.push_back(static_cast<unsigned>(s));
  }
  if (opt.shard_sweep.empty()) opt.shard_sweep.push_back(1);
  opt.shards = opt.shard_sweep.front();
  if (!opt.timeline_path.empty()) Timeline::Global().Enable();
  std::string tool = flags.program_name();
  const std::size_t slash = tool.find_last_of('/');
  opt.tool = slash == std::string::npos ? tool : tool.substr(slash + 1);
  for (const auto& [name, value] : flags.items()) {
    opt.raw_flags.emplace_back(name, value);
  }
  return opt;
}

// Applies global options onto a per-binary CaseSpec default.
inline void ApplyOptions(const BenchOptions& opt, CaseSpec* spec) {
  if (opt.threads != 0) spec->run.threads = opt.threads;
  if (opt.queries_per_thread != 0) {
    spec->run.queries_per_thread = opt.queries_per_thread;
  }
  if (opt.repeats != 0) spec->run.repeats = opt.repeats;
  spec->run.seed = opt.seed;
  spec->run.pipeline = opt.pipeline;
  spec->run.perf = opt.perf;
  spec->run.sample_ms = opt.sample_ms;
  spec->run.shards = opt.shards;
}

// --- shared --perf reporting -----------------------------------------------
//
// Binaries that print MeasuredKernel rows extend their header with
// AppendPerfColumns() and each row with AppendPerfCells(); both are no-ops
// while --perf is off, so tables keep their historical shape by default.

inline void AppendPerfColumns(const BenchOptions& opt,
                              std::vector<std::string>* headers) {
  if (!opt.perf.enabled) return;
  headers->insert(headers->end(),
                  {"cycles/lookup", "IPC", "LLC-miss/lookup",
                   "dTLB-miss/lookup", "perf src"});
}

inline void AppendPerfCells(const BenchOptions& opt, const MeasuredKernel& k,
                            std::vector<std::string>* row) {
  if (!opt.perf.enabled) return;
  const DerivedPerf d = k.Derived();
  row->push_back(FormatPerfValue(d.cycles_per_op, d.estimated, 1));
  row->push_back(FormatPerfValue(d.ipc, /*estimated=*/false, 2));
  row->push_back(FormatPerfValue(d.llc_misses_per_op, false, 3));
  row->push_back(FormatPerfValue(d.dtlb_misses_per_op, false, 3));
  row->push_back(!k.perf_collected ? "-" : d.estimated ? "tsc-est" : "hw");
}

// One-line provenance note under a --perf table (skipped for CSV output).
inline void PrintPerfFooter(const BenchOptions& opt) {
  if (!opt.perf.enabled || opt.csv) return;
  std::printf(
      "\nperf: 'hw' = perf_event_open counters (multiplexing-scaled); "
      "'tsc-est' = rdtsc fallback, cycle values marked '~' are estimates "
      "(perf_event_paranoid=%d)\n",
      PerfEventParanoid());
}

inline void PrintHeader(const char* title, const BenchOptions& opt) {
  if (opt.csv) return;
  std::printf("=== %s ===\n", title);
  std::printf("CPU: %s\n", GetCpuFeatures().ToString().c_str());
  std::printf("threads: %u  mode: %s\n\n",
              opt.threads ? opt.threads
                          : static_cast<unsigned>(HardwareThreads()),
              opt.quick ? "quick (use --full for paper-scale sweeps)"
                        : "full");
}

inline void Emit(const TablePrinter& table, const BenchOptions& opt) {
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
}

// Standard CaseSpec for the paper's stand-alone HT studies.
inline CaseSpec PaperCaseDefaults(const BenchOptions& opt) {
  CaseSpec spec;
  spec.load_factor = 0.9;
  spec.hit_rate = 0.9;
  spec.run.repeats = opt.quick ? 3 : 5;
  spec.run.queries_per_thread = opt.quick ? (1u << 18) : (1u << 21);
  ApplyOptions(opt, &spec);
  return spec;
}

// --- structured run reports (--json / --timeline) --------------------------
//
// One ReportSession per binary run: benches feed it every CaseResult (or
// hand-built row) alongside their TablePrinter output, then return
// `session.Finish()` from main. While neither --json nor --timeline is
// given everything is a no-op, so report-less runs stay byte-identical.
class ReportSession {
 public:
  ReportSession(const BenchOptions& opt, const std::string& title)
      : opt_(opt), active_(!opt.json_path.empty() ||
                           !opt.timeline_path.empty()) {
    if (!active_) return;
    report_ = NewRunReport(opt.tool, title);
    report_.flags = opt.raw_flags;
    const auto opt_str = [this](const char* k, std::string v) {
      report_.options.emplace_back(k, std::move(v));
    };
    opt_str("quick", opt.quick ? "true" : "false");
    opt_str("threads",
            std::to_string(opt.threads
                               ? opt.threads
                               : static_cast<unsigned>(HardwareThreads())));
    opt_str("queries_per_thread", std::to_string(opt.queries_per_thread));
    opt_str("repeats", std::to_string(opt.repeats));
    opt_str("seed", std::to_string(opt.seed));
    opt_str("prefetch", PrefetchPolicyName(opt.pipeline.policy));
    opt_str("perf", opt.perf.enabled ? "true" : "false");
    opt_str("sample_ms", std::to_string(opt.sample_ms));
    opt_str("shards", std::to_string(opt.shards));
  }

  bool active() const { return active_; }
  RunReport& report() { return report_; }

  // Sweep-point config helper: Config({{"ht_size","1048576"}, ...}).
  static StringPairs Config(StringPairs pairs) { return pairs; }

  void AddCase(const CaseResult& result, const StringPairs& config) {
    if (!active_) return;
    AppendCaseResult(&report_, result, config, opt_.sample_ms);
  }

  void AddMixed(const std::vector<MixedResult>& results,
                const StringPairs& config) {
    if (!active_) return;
    AppendMixedResults(&report_, results, config);
  }

  // Hand-built row for benches whose measurements are not MeasuredKernels
  // (e.g. fig2's max load factor, table1's layout geometry).
  void AddRow(const std::string& kernel, const StringPairs& config,
              std::vector<std::pair<std::string, MetricStat>> metrics) {
    if (!active_) return;
    ResultRow row;
    row.kernel = kernel;
    row.config = config;
    row.metrics = std::move(metrics);
    report_.results.push_back(std::move(row));
  }

  static MetricStat Stat(double mean, double stddev = 0.0) {
    MetricStat s;
    s.mean = mean;
    s.stddev = stddev;
    return s;
  }

  // Writes --json / --timeline outputs; the return value is main()'s exit
  // code (0, or 1 on I/O failure).
  int Finish() {
    if (!active_) return 0;
    return WriteReportOutputs(report_, opt_.json_path, opt_.timeline_path,
                              opt_.csv);
  }

 private:
  BenchOptions opt_;
  bool active_ = false;
  RunReport report_;
};

inline LayoutSpec Layout(unsigned n, unsigned m, unsigned kb = 32,
                         unsigned vb = 32,
                         BucketLayout bl = BucketLayout::kInterleaved) {
  LayoutSpec s;
  s.ways = n;
  s.slots = m;
  s.key_bits = kb;
  s.val_bits = vb;
  s.bucket_layout = bl;
  return s;
}

}  // namespace bench
}  // namespace simdht

#endif  // SIMDHT_BENCH_BENCH_COMMON_H_
