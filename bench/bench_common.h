// Shared scaffolding for the figure/table reproduction binaries.
//
// Every binary accepts:
//   --quick          smaller sweeps (default: on; --full for paper-scale)
//   --threads=N      worker threads (default: all hardware threads)
//   --queries=N      probe-stream length per thread per repetition
//   --repeats=N      repetitions averaged (paper protocol: 5)
//   --csv            machine-readable output
//   --seed=N         workload/table seed
//   --prefetch=P     none | group | amac: also measure kernels through the
//                    prefetch pipeline (binaries that RunCase)
//   --group-size=N   keys per prefetch group (default 32)
//   --amac-groups=G  prefetch groups in flight for amac (default 4)
//   --perf           attach hardware counters per worker and add
//                    cycles/lookup, IPC, LLC-miss and dTLB-miss columns
//                    (TSC-estimated cycles, marked "~", where
//                    perf_event_open is unavailable)
//   --perf-events=L  comma list to restrict the event set, e.g.
//                    cycles,instructions,llc-misses
#ifndef SIMDHT_BENCH_BENCH_COMMON_H_
#define SIMDHT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/case_runner.h"
#include "perf/perf_events.h"

namespace simdht {
namespace bench {

struct BenchOptions {
  bool quick = true;
  bool csv = false;
  unsigned threads = 0;
  std::size_t queries_per_thread = 0;  // 0 = per-binary default
  unsigned repeats = 0;                // 0 = per-binary default
  std::uint64_t seed = 42;
  PipelineConfig pipeline;  // kNone = direct-only measurements
  PerfOptions perf;         // disabled = wall-clock-only measurements
};

inline BenchOptions ParseBenchOptions(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions opt;
  opt.quick = !flags.GetBool("full", false) && flags.GetBool("quick", true);
  opt.csv = flags.GetBool("csv", false);
  opt.threads = static_cast<unsigned>(flags.GetInt("threads", 0));
  opt.queries_per_thread =
      static_cast<std::size_t>(flags.GetInt("queries", 0));
  opt.repeats = static_cast<unsigned>(flags.GetInt("repeats", 0));
  opt.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::string prefetch = flags.GetString("prefetch", "none");
  if (!ParsePrefetchPolicy(prefetch, &opt.pipeline.policy)) {
    std::fprintf(stderr, "unknown --prefetch '%s', using 'none'\n",
                 prefetch.c_str());
  }
  opt.pipeline.group_size =
      static_cast<unsigned>(flags.GetInt("group-size", 32));
  opt.pipeline.amac_groups =
      static_cast<unsigned>(flags.GetInt("amac-groups", 4));
  opt.perf.enabled =
      flags.GetBool("perf", false) || flags.Has("perf-events");
  std::string perf_why;
  if (!ParsePerfEventList(flags.GetString("perf-events", ""),
                          &opt.perf.events, &perf_why)) {
    std::fprintf(stderr, "--perf-events: %s; using the default set\n",
                 perf_why.c_str());
    opt.perf.events = DefaultPerfEvents();
  }
  return opt;
}

// Applies global options onto a per-binary CaseSpec default.
inline void ApplyOptions(const BenchOptions& opt, CaseSpec* spec) {
  if (opt.threads != 0) spec->run.threads = opt.threads;
  if (opt.queries_per_thread != 0) {
    spec->run.queries_per_thread = opt.queries_per_thread;
  }
  if (opt.repeats != 0) spec->run.repeats = opt.repeats;
  spec->run.seed = opt.seed;
  spec->run.pipeline = opt.pipeline;
  spec->run.perf = opt.perf;
}

// --- shared --perf reporting -----------------------------------------------
//
// Binaries that print MeasuredKernel rows extend their header with
// AppendPerfColumns() and each row with AppendPerfCells(); both are no-ops
// while --perf is off, so tables keep their historical shape by default.

inline void AppendPerfColumns(const BenchOptions& opt,
                              std::vector<std::string>* headers) {
  if (!opt.perf.enabled) return;
  headers->insert(headers->end(),
                  {"cycles/lookup", "IPC", "LLC-miss/lookup",
                   "dTLB-miss/lookup", "perf src"});
}

inline void AppendPerfCells(const BenchOptions& opt, const MeasuredKernel& k,
                            std::vector<std::string>* row) {
  if (!opt.perf.enabled) return;
  const DerivedPerf d = k.Derived();
  row->push_back(FormatPerfValue(d.cycles_per_op, d.estimated, 1));
  row->push_back(FormatPerfValue(d.ipc, /*estimated=*/false, 2));
  row->push_back(FormatPerfValue(d.llc_misses_per_op, false, 3));
  row->push_back(FormatPerfValue(d.dtlb_misses_per_op, false, 3));
  row->push_back(!k.perf_collected ? "-" : d.estimated ? "tsc-est" : "hw");
}

// One-line provenance note under a --perf table (skipped for CSV output).
inline void PrintPerfFooter(const BenchOptions& opt) {
  if (!opt.perf.enabled || opt.csv) return;
  std::printf(
      "\nperf: 'hw' = perf_event_open counters (multiplexing-scaled); "
      "'tsc-est' = rdtsc fallback, cycle values marked '~' are estimates "
      "(perf_event_paranoid=%d)\n",
      PerfEventParanoid());
}

inline void PrintHeader(const char* title, const BenchOptions& opt) {
  if (opt.csv) return;
  std::printf("=== %s ===\n", title);
  std::printf("CPU: %s\n", GetCpuFeatures().ToString().c_str());
  std::printf("threads: %u  mode: %s\n\n",
              opt.threads ? opt.threads
                          : static_cast<unsigned>(HardwareThreads()),
              opt.quick ? "quick (use --full for paper-scale sweeps)"
                        : "full");
}

inline void Emit(const TablePrinter& table, const BenchOptions& opt) {
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
}

// Standard CaseSpec for the paper's stand-alone HT studies.
inline CaseSpec PaperCaseDefaults(const BenchOptions& opt) {
  CaseSpec spec;
  spec.load_factor = 0.9;
  spec.hit_rate = 0.9;
  spec.run.repeats = opt.quick ? 3 : 5;
  spec.run.queries_per_thread = opt.quick ? (1u << 18) : (1u << 21);
  ApplyOptions(opt, &spec);
  return spec;
}

inline LayoutSpec Layout(unsigned n, unsigned m, unsigned kb = 32,
                         unsigned vb = 32,
                         BucketLayout bl = BucketLayout::kInterleaved) {
  LayoutSpec s;
  s.ways = n;
  s.slots = m;
  s.key_bits = kb;
  s.val_bits = vb;
  s.bucket_layout = bl;
  return s;
}

}  // namespace bench
}  // namespace simdht

#endif  // SIMDHT_BENCH_BENCH_COMMON_H_
