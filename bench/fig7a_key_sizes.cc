// Fig 7(a) / Case Study 2: 16-bit and 64-bit hash keys.
//
// Paper shape: (K,V) = (16,32) over a (2,8) BCHT gains ~4x from horizontal
// SIMD (16 keys compared per instruction); (K,V) = (64,64) over 3-way
// cuckoo gains only ~1.4x — 16-byte slots break the packed 64-bit gather
// trick, so keys and values need separate gathers (Observation 2).
#include "bench_common.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Fig 7(a) / Case Study 2: (K,V) = (64,64) and (16,32)", opt);
  ReportSession session(opt, "Fig 7(a): 16-bit and 64-bit hash keys");

  struct Config {
    LayoutSpec layout;
    const char* label;
  };
  const Config configs[] = {
      {Layout(3, 1, 64, 64), "(K,V)=(64,64) 3-way cuckoo"},
      {Layout(2, 8, 16, 32, BucketLayout::kSplit),
       "(K,V)=(16,32) (2,8) BCHT"},
      // Baseline from Case Study 1 for the cross-figure comparison.
      {Layout(3, 1, 32, 32), "(K,V)=(32,32) 3-way cuckoo (reference)"},
      // Swiss control-byte rows: fingerprint scans are width-independent of
      // the key size, so the 16/64-bit penalty pattern differs from cuckoo.
      {LayoutSpec::Swiss(16, 32), "(K,V)=(16,32) Swiss"},
      {LayoutSpec::Swiss(64, 64), "(K,V)=(64,64) Swiss"},
  };

  TablePrinter table({"config", "pattern", "kernel", "Mlookups/s/core",
                      "speedup vs scalar"});
  for (const AccessPattern pattern :
       {AccessPattern::kUniform, AccessPattern::kZipfian}) {
    for (const Config& config : configs) {
      CaseSpec spec = PaperCaseDefaults(opt);
      spec.layout = config.layout;
      spec.table_bytes = 512 << 10;  // paper: 512 KB HT
      spec.pattern = pattern;
      const CaseResult result = RunCaseAuto(spec);
      session.AddCase(result, {{"config", config.label},
                               {"pattern", AccessPatternName(pattern)}});
      for (const MeasuredKernel& k : result.kernels) {
        table.AddRow({config.label, AccessPatternName(pattern), k.name,
                      TablePrinter::Fmt(k.mlps_per_core, 1),
                      k.approach == Approach::kScalar
                          ? "1.00"
                          : TablePrinter::Fmt(k.speedup, 2)});
      }
    }
  }
  Emit(table, opt);
  return session.Finish();
}
