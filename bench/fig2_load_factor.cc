// Fig 2 reproduction: maximum achievable load factor per cuckoo variant.
//
// Paper: N-way (non-bucketized) cuckoo for N = 2..4 reaches ~50/91/97%,
// and (N, m) BCHT rises with slots-per-bucket (e.g. (2,4) ~93%). We measure
// empirically: insert unique random keys until the eviction walk fails.
#include "bench_common.h"
#include "ht/table_builder.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Fig 2: max load factor vs (N, m) cuckoo variants", opt);
  ReportSession session(opt, "Fig 2: max load factor per cuckoo variant");

  const std::uint64_t buckets = opt.quick ? (1u << 13) : (1u << 16);
  const unsigned seeds = opt.quick ? 3 : 5;

  TablePrinter table({"N (ways)", "m (slots/bucket)", "layout",
                      "max LF (median)", "LF min-max", "paper reference"});
  struct Reference {
    unsigned n, m;
    const char* paper;
  };
  const Reference refs[] = {
      {2, 1, "~0.50"}, {3, 1, "~0.91"}, {4, 1, "~0.97"},
      {2, 2, "~0.84"}, {2, 4, "~0.93"}, {2, 8, "~0.96"},
      {3, 2, "~0.96"}, {3, 4, "~0.98"}, {3, 8, "~0.99"},
      {4, 2, "~0.98"}, {4, 4, "~0.99"}, {4, 8, "~0.99"},
  };

  for (const Reference& ref : refs) {
    // Slot count held comparable across shapes: scale buckets down by m.
    // One seed's max LF is a sample of placement luck; the spread exposes
    // how wide the luck band is while the median is stable run-to-run.
    const LoadFactorSpread spread =
        MeasureMaxLoadFactorSpread<std::uint32_t, std::uint32_t>(
            ref.n, ref.m, buckets / ref.m, BucketLayout::kInterleaved,
            opt.seed + 1, seeds);
    char band[64];
    std::snprintf(band, sizeof(band), "%.3f-%.3f", spread.min, spread.max);
    table.AddRow({TablePrinter::Fmt(std::int64_t{ref.n}),
                  TablePrinter::Fmt(std::int64_t{ref.m}),
                  ref.m == 1 ? "N-way cuckoo" : "BCHT",
                  TablePrinter::Fmt(spread.median, 3), band, ref.paper});
    session.AddRow(
        ref.m == 1 ? "N-way cuckoo" : "BCHT",
        {{"ways", std::to_string(ref.n)}, {"slots", std::to_string(ref.m)}},
        {{"max_load_factor_median", ReportSession::Stat(spread.median)},
         {"max_load_factor_min", ReportSession::Stat(spread.min)},
         {"max_load_factor_max", ReportSession::Stat(spread.max)}});
  }
  Emit(table, opt);
  return session.Finish();
}
