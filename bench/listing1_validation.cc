// Listing 1 reproduction: the SIMD algorithm validation engine's output for
// (K,V) = (32, 32) over the Case Study 1 layout sweep, plus the additional
// layouts the other case studies use.
#include <cstdio>

#include "bench_common.h"
#include "core/validation.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Listing 1: SIMD-aware cuckoo HT design choices", opt);
  ReportSession session(opt, "Listing 1: validation-engine design choices");
  const auto record = [&session](const LayoutSpec& spec,
                                 const ValidationOptions& options) {
    const auto choices = ValidationEngine::Enumerate(spec, options);
    session.AddRow(spec.ToString(), {{"layout", spec.ToString()}},
                   {{"viable_designs",
                     ReportSession::Stat(static_cast<double>(
                         choices.size()))}});
  };

  std::printf("(k,v) = (32, 32); 'w' = 128, 256, 512\n");
  std::printf("%s\n",
              ValidationEngine::Listing(CaseStudy1Layouts()).c_str());
  for (const LayoutSpec& spec : CaseStudy1Layouts()) {
    record(spec, ValidationOptions{});
  }

  std::printf("Case Study 2 layouts:\n");
  std::vector<LayoutSpec> extra = {
      Layout(3, 1, 64, 64),
      Layout(2, 8, 16, 32, BucketLayout::kSplit),
  };
  for (const LayoutSpec& spec : extra) {
    std::printf("%s: %s\n", spec.ToString().c_str(),
                ValidationEngine::ListingLine(
                    spec, ValidationEngine::Enumerate(spec))
                    .c_str());
    record(spec, ValidationOptions{});
  }

  std::printf("\nCase Study 5 (hybrid vertical-over-BCHT) choices:\n");
  ValidationOptions hybrid;
  hybrid.include_hybrid = true;
  for (const LayoutSpec& spec : {Layout(2, 2), Layout(3, 2)}) {
    for (const DesignChoice& c : ValidationEngine::Enumerate(spec, hybrid)) {
      if (c.approach == Approach::kVerticalBcht) {
        std::printf("(%u, %u) -> %s\n", spec.ways, spec.slots,
                    c.Describe().c_str());
      }
    }
    record(spec, hybrid);
  }
  return session.Finish();
}
