// Fig 8 / Case Study 4: Intel Skylake vs Intel Cascade Lake.
//
// HARDWARE SUBSTITUTION (see DESIGN.md): the paper contrasts two physical
// CPU generations (40-core Skylake vs 48-core/96-thread Cascade Lake). A
// single host cannot fabricate a second microarchitecture, so this binary
// runs the same two designs — (2,4) BCHT horizontal and 3-way cuckoo
// vertical — across two *subscription proxies* (half vs full hardware
// threads, mirroring the paper's 40- vs 68-process runs) over both table
// sizes and access patterns. The cross-design and cross-pattern shape
// (vertical keeps visible gains under skew; horizontal degenerates to its
// scalar twin) is reproducible; the absolute cross-generation 1.5x is not.
#include "bench_common.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Fig 8 / Case Study 4: platform proxies (see DESIGN.md)", opt);
  ReportSession session(opt, "Fig 8: platform subscription proxies");

  const unsigned all_threads = opt.threads
                                   ? opt.threads
                                   : static_cast<unsigned>(HardwareThreads());
  const unsigned half_threads = all_threads > 1 ? all_threads / 2 : 1;
  struct Proxy {
    const char* label;
    unsigned threads;
  };
  const Proxy proxies[] = {{"platform-A (half subscription)", half_threads},
                           {"platform-B (full subscription)", all_threads}};

  TablePrinter table({"platform proxy", "layout", "HT size", "pattern",
                      "kernel", "Mlookups/s/core", "speedup vs scalar"});

  for (const Proxy& proxy : proxies) {
    for (const std::uint64_t bytes :
         {std::uint64_t{1} << 20, std::uint64_t{16} << 20}) {
      for (const AccessPattern pattern :
           {AccessPattern::kUniform, AccessPattern::kZipfian}) {
        for (const LayoutSpec& layout : {Layout(2, 4), Layout(3, 1)}) {
          CaseSpec spec = PaperCaseDefaults(opt);
          spec.layout = layout;
          spec.table_bytes = bytes;
          spec.pattern = pattern;
          spec.run.threads = proxy.threads;

          // Measure the paper's chosen kernel per design: AVX2 horizontal
          // for (2,4), AVX-512 vertical for 3-way.
          const Approach approach = layout.bucketized()
                                        ? Approach::kHorizontal
                                        : Approach::kVertical;
          const unsigned width = layout.bucketized() ? 256 : 512;
          auto kernels = KernelRegistry::Get().Find(
              KernelQuery{layout, approach, width});
          const CaseResult result = RunCase(spec, kernels);
          session.AddCase(result,
                          {{"platform", proxy.label},
                           {"layout", layout.ToString()},
                           {"ht_size", std::to_string(bytes)},
                           {"pattern", AccessPatternName(pattern)}});
          for (const MeasuredKernel& k : result.kernels) {
            table.AddRow({proxy.label, layout.ToString(),
                          HumanBytes(static_cast<double>(bytes)),
                          AccessPatternName(pattern), k.name,
                          TablePrinter::Fmt(k.mlps_per_core, 1),
                          k.approach == Approach::kScalar
                              ? "1.00"
                              : TablePrinter::Fmt(k.speedup, 2)});
          }
        }
      }
    }
  }
  Emit(table, opt);
  return session.Finish();
}
