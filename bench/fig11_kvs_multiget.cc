// Fig 11 / Section VI: SIMD-aware hash tables inside the key-value store.
//
// Fig 11(a): server-side Get throughput and end-to-end Multi-Get latency
// for MemC3 (non-SIMD baseline) vs Bucket-Cuckoo-Hor(AVX-256) vs
// Cuckoo-Ver(AVX-512), batch sizes 16 and 96.
// Fig 11(b): server-side per-phase breakdown (pre-process / HT lookup /
// post-process) per Multi-Get batch.
//
// Paper shape: 1.45x-2.04x server-side Get throughput and 10-34% lower
// end-to-end latency vs MemC3; the two SIMD designs are near-identical
// end-to-end because the scalar full-key verification step dominates the
// residual lookup cost.
#include <memory>

#include "bench_common.h"
#include "kvs/loadgen.h"
#include "kvs/memc3_backend.h"
#include "kvs/simd_backend.h"
#include "perf/metrics.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Fig 11: RDMA-Memcached Multi-Get with SIMD-aware HT", opt);
  ReportSession session(opt, "Fig 11: KVS Multi-Get with SIMD-aware HT");

  MemslapConfig config;
  // Each client pairs with a dedicated server worker (2 threads per
  // client). The paper undersubscribes (26 workers on 28 cores); mirror
  // that so phase timers are not inflated by preemption.
  config.clients =
      opt.threads ? opt.threads
                  : static_cast<unsigned>(
                        HardwareThreads() / 2 ? HardwareThreads() / 2 : 1);
  config.num_keys = opt.quick ? 100000 : 2000000;  // paper: 2 M-entry HT
  config.requests_per_client = opt.quick ? 1500 : 8000;
  config.key_size = 20;   // paper: 20 B keys
  config.val_size = 32;   // paper: 32 B values
  config.hit_rate = 0.95;
  config.zipf = true;     // mutilate-like skew
  config.wire = WireModel::InfinibandEdr();
  config.seed = opt.seed;

  const std::uint64_t ht_entries = config.num_keys * 2;
  const std::size_t mem_limit = std::size_t{2} << 30;

  struct Candidate {
    const char* label;
    std::unique_ptr<KvBackend> (*make)(std::uint64_t, std::size_t);
    SimdLevel needs;
  };
  const Candidate candidates[] = {
      {"MemC3 (non-SIMD baseline)",
       [](std::uint64_t e, std::size_t m) -> std::unique_ptr<KvBackend> {
         return std::make_unique<Memc3Backend>(e, m);
       },
       SimdLevel::kScalar},
      {"MemC3+SSE-tags (ablation)",
       [](std::uint64_t e, std::size_t m) -> std::unique_ptr<KvBackend> {
         return std::make_unique<Memc3Backend>(e, m, /*simd_tags=*/true);
       },
       SimdLevel::kSse42},
      {"Bucket-Cuckoo-Hor(AVX-256)",
       [](std::uint64_t e, std::size_t m) -> std::unique_ptr<KvBackend> {
         return std::make_unique<SimdBackend>(
             SimdBackend::BucketCuckooHorAvx2(), e, m);
       },
       SimdLevel::kAvx2},
      {"Cuckoo-Ver(AVX-512)",
       [](std::uint64_t e, std::size_t m) -> std::unique_ptr<KvBackend> {
         return std::make_unique<SimdBackend>(
             SimdBackend::CuckooVerAvx512(), e, m);
       },
       SimdLevel::kAvx512},
  };

  TablePrinter fig11a({"batch", "backend", "server Get Mops",
                       "vs MemC3", "MGet mean us", "p50 us", "p99 us",
                       "p999 us", "p50 vs MemC3"});
  TablePrinter fig11b({"batch", "backend", "pre-process us/req",
                       "HT lookup us/req", "post-process us/req",
                       "total us/req", "lookup share"});
  // --perf: per-phase tail latencies from the server's MetricsRegistry —
  // the seqlock histograms see every request, not just the means.
  TablePrinter phase_tails({"batch", "backend", "phase", "p50 us", "p95 us",
                            "p99 us", "p999 us", "max us"});

  for (const unsigned batch : {16u, 96u}) {
    config.mget_size = batch;
    double memc3_mops = 0;
    double memc3_lat = 0;
    for (const Candidate& candidate : candidates) {
      if (!GetCpuFeatures().Supports(candidate.needs)) continue;
      // Best-of-N runs: on shared hosts a single run's mean latency can be
      // poisoned by one scheduler stall; keep the run with the highest
      // server-side throughput (the least-perturbed one).
      const unsigned runs = opt.quick ? 3 : 5;
      MemslapResult r;
      MetricsSnapshot metrics;
      for (unsigned rerun = 0; rerun < runs; ++rerun) {
        auto backend = candidate.make(ht_entries, mem_limit);
        // One registry per attempt so the kept snapshot covers exactly the
        // kept run.
        auto registry = opt.perf.enabled ? std::make_unique<MetricsRegistry>()
                                         : nullptr;
        MemslapResult attempt =
            RunMemslap(backend.get(), config, registry.get());
        if (rerun == 0 || attempt.server_get_mops > r.server_get_mops) {
          r = std::move(attempt);
          if (registry) metrics = registry->Aggregate();
        }
      }
      if (&candidate == &candidates[0]) {
        memc3_mops = r.server_get_mops;
        memc3_lat = r.mget_p50_us;
      }
      fig11a.AddRow(
          {TablePrinter::Fmt(std::int64_t{batch}), candidate.label,
           TablePrinter::Fmt(r.server_get_mops, 2),
           memc3_mops > 0
               ? TablePrinter::Fmt(r.server_get_mops / memc3_mops, 2) + "x"
               : "-",
           TablePrinter::Fmt(r.mget_mean_us, 1),
           TablePrinter::Fmt(r.mget_p50_us, 1),
           TablePrinter::Fmt(r.mget_p99_us, 1),
           TablePrinter::Fmt(r.mget_p999_us, 1),
           memc3_lat > 0
               ? TablePrinter::Fmt(
                     (1.0 - r.mget_p50_us / memc3_lat) * 100.0, 1) +
                     "% lower"
               : "-"});
      const double pre = r.phases.MeanPreNs() / 1e3;
      const double lookup = r.phases.MeanLookupNs() / 1e3;
      const double post = r.phases.MeanPostNs() / 1e3;
      const double total = r.phases.MeanTotalNs() / 1e3;
      session.AddRow(candidate.label,
                     {{"batch", std::to_string(batch)}},
                     {{"server_get_mops",
                       ReportSession::Stat(r.server_get_mops)},
                      {"mget_mean_us", ReportSession::Stat(r.mget_mean_us)},
                      {"mget_p50_us", ReportSession::Stat(r.mget_p50_us)},
                      {"mget_p99_us", ReportSession::Stat(r.mget_p99_us)},
                      {"mget_p999_us", ReportSession::Stat(r.mget_p999_us)},
                      {"pre_process_us", ReportSession::Stat(pre)},
                      {"ht_lookup_us", ReportSession::Stat(lookup)},
                      {"post_process_us", ReportSession::Stat(post)}});
      fig11b.AddRow({TablePrinter::Fmt(std::int64_t{batch}), candidate.label,
                     TablePrinter::Fmt(pre, 2), TablePrinter::Fmt(lookup, 2),
                     TablePrinter::Fmt(post, 2), TablePrinter::Fmt(total, 2),
                     TablePrinter::Fmt(lookup / total * 100.0, 1) + "%"});
      if (opt.perf.enabled) {
        const struct {
          const char* label;
          const char* metric;
        } phases[] = {{"parse", kvs_metrics::kParseNs},
                      {"index probe", kvs_metrics::kIndexProbeNs},
                      {"value copy", kvs_metrics::kValueCopyNs},
                      {"transport send", kvs_metrics::kTransportNs}};
        for (const auto& phase : phases) {
          const auto it = metrics.histograms.find(phase.metric);
          if (it == metrics.histograms.end() || it->second.count() == 0) {
            continue;
          }
          const Histogram& h = it->second;
          phase_tails.AddRow(
              {TablePrinter::Fmt(std::int64_t{batch}), candidate.label,
               phase.label,
               TablePrinter::Fmt(static_cast<double>(h.Percentile(50)) / 1e3,
                                 2),
               TablePrinter::Fmt(static_cast<double>(h.Percentile(95)) / 1e3,
                                 2),
               TablePrinter::Fmt(static_cast<double>(h.Percentile(99)) / 1e3,
                                 2),
               TablePrinter::Fmt(static_cast<double>(h.P999()) / 1e3, 2),
               TablePrinter::Fmt(static_cast<double>(h.max()) / 1e3, 2)});
        }
      }
    }
  }

  if (!opt.csv) std::printf("Fig 11(a): throughput and latency\n");
  Emit(fig11a, opt);
  if (!opt.csv) {
    std::printf("\nFig 11(b): server-side time breakdown per Multi-Get\n");
  }
  Emit(fig11b, opt);
  if (opt.perf.enabled) {
    if (!opt.csv) {
      std::printf("\nServer phase tails (MetricsRegistry histograms)\n");
    }
    Emit(phase_tails, opt);
  }
  return session.Finish();
}
