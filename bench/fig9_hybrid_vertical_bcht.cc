// Fig 9 / Case Study 5: vertical SIMD applied to bucketized tables.
//
// Vertical gathers normally target m = 1 tables; over a BCHT the kernel
// loops over the m slots with selective (masked) gathers. Paper shape:
// moving from (2,1) to (2,2) — or (3,1) to (3,2) — costs ~1.45x of the
// vertical throughput, but the hybrid still beats its scalar twin.
#include "bench_common.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Fig 9 / Case Study 5: vertical SIMD over BCHT", opt);
  ReportSession session(opt, "Fig 9: vertical SIMD over BCHT");

  struct Config {
    LayoutSpec layout;
    std::uint64_t bytes;
  };
  // Paper: 2-way pair at 1 MB (Skylake), 3-way pair at 16 MB (Cascade Lake).
  const Config configs[] = {
      {Layout(2, 1), 1 << 20},
      {Layout(2, 2), 1 << 20},
      {Layout(3, 1), 16 << 20},
      {Layout(3, 2), 16 << 20},
  };

  TablePrinter table({"layout", "HT size", "kernel", "Mlookups/s/core",
                      "speedup vs scalar"});
  for (const Config& config : configs) {
    CaseSpec spec = PaperCaseDefaults(opt);
    spec.layout = config.layout;
    spec.table_bytes = config.bytes;

    ValidationOptions options;
    options.include_hybrid = true;
    const CaseResult result = RunCaseAuto(spec, options);
    session.AddCase(result, {{"layout", config.layout.ToString()},
                             {"ht_size", std::to_string(config.bytes)}});
    for (const MeasuredKernel& k : result.kernels) {
      // This figure is about the vertical family only.
      if (k.approach == Approach::kHorizontal) continue;
      table.AddRow({config.layout.ToString(),
                    HumanBytes(static_cast<double>(config.bytes)), k.name,
                    TablePrinter::Fmt(k.mlps_per_core, 1),
                    k.approach == Approach::kScalar
                        ? "1.00"
                        : TablePrinter::Fmt(k.speedup, 2)});
    }
  }
  Emit(table, opt);
  return session.Finish();
}
