// Table I reproduction: the state-of-the-art CPU-optimized cuckoo layouts
// as profiles, each benchmarked under its natural workload.
//
// Our framework supports 16/32/64-bit keys; layouts with odd key widths
// (CuckooSwitch's 6 B MAC keys, Cuckoo++'s metadata payloads) are mapped to
// the nearest supported shape — noted per row.
#include "bench_common.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Table I: state-of-the-art layout profiles", opt);
  ReportSession session(opt, "Table I: state-of-the-art layout profiles");

  struct Profile {
    const char* work;
    LayoutSpec layout;
    AccessPattern pattern;
    const char* note;
    // 16-bit-key profiles get smaller tables: the 64 K key domain must
    // cover both the fill target and a disjoint miss pool.
    std::uint64_t table_bytes = 1 << 20;
  };
  const Profile profiles[] = {
      {"MemC3 [12]", Layout(2, 4), AccessPattern::kZipfian,
       "4x(1B,8B) tag design; proxied as (2,4) k32/v32"},
      {"SILT [18]", Layout(2, 4, 16, 32, BucketLayout::kSplit),
       AccessPattern::kZipfian, "4x(2B,4B) -> (2,4) k16/v32 split",
       128 << 10},
      {"CuckooSwitch [17]", Layout(2, 4, 64, 64), AccessPattern::kUniform,
       "4x(6B,2B) MAC table; proxied as (2,4) k64/v64"},
      {"Vectorized BCHT (2-slot) [1]", Layout(2, 2),
       AccessPattern::kUniform, "2x(4B,4B), SSE horizontal"},
      {"Vectorized BCHT (8-slot) [1]", Layout(2, 8),
       AccessPattern::kUniform, "8x(4B,4B), AVX-512 horizontal"},
      {"Vectorized Cuckoo HT [1]", Layout(2, 1), AccessPattern::kUniform,
       "1x(4B,4B), vertical gathers"},
      {"Cuckoo++ [8]", Layout(2, 8, 16, 32, BucketLayout::kSplit),
       AccessPattern::kUniform, "8x(2B,..) -> (2,8) k16/v32 split",
       256 << 10},
      {"DPDK [9]", Layout(2, 8), AccessPattern::kUniform,
       "8x(4B,8B) -> (2,8) k32/v32"},
  };

  TablePrinter table({"research work", "layout", "pattern", "best kernel",
                      "Mlookups/s/core", "speedup vs scalar", "mapping note"});
  for (const Profile& profile : profiles) {
    CaseSpec spec = PaperCaseDefaults(opt);
    spec.layout = profile.layout;
    spec.table_bytes = profile.table_bytes;
    spec.pattern = profile.pattern;
    const CaseResult result = RunCaseAuto(spec);
    session.AddCase(result,
                    {{"profile", profile.work},
                     {"layout", profile.layout.ToString()},
                     {"pattern", AccessPatternName(profile.pattern)}});

    const MeasuredKernel& scalar = result.kernels.front();
    const MeasuredKernel* best = result.Best();
    table.AddRow(
        {profile.work, profile.layout.ToString(),
         AccessPatternName(profile.pattern),
         best != nullptr ? best->name : scalar.name,
         TablePrinter::Fmt(best != nullptr ? best->mlps_per_core
                                           : scalar.mlps_per_core,
                           1),
         best != nullptr ? TablePrinter::Fmt(best->speedup, 2) : "1.00",
         profile.note});
  }
  Emit(table, opt);
  return session.Finish();
}
