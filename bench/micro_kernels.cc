// google-benchmark microbenchmarks for the raw lookup kernels.
//
// Measures each registered kernel over a fixed cache-resident table,
// sweeping the batch size — the per-call costs (hash, gather, compare,
// reduce) without the performance engine around them.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "core/workload.h"
#include "ht/cuckoo_table.h"
#include "ht/table_builder.h"
#include "obs/run_report.h"
#include "obs/timeline.h"
#include "simd/kernel.h"

namespace simdht {
namespace {

// google-benchmark owns argv parsing here, so the shared report flags are
// peeled off before Initialize() sees (and rejects) them.
struct ReportFlags {
  std::string json_path;
  std::string timeline_path;

  static ReportFlags Strip(int* argc, char** argv) {
    ReportFlags out;
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--json=", 7) == 0) {
        out.json_path = arg + 7;
      } else if (std::strncmp(arg, "--timeline=", 11) == 0) {
        out.timeline_path = arg + 11;
      } else {
        argv[kept++] = argv[i];
      }
    }
    *argc = kept;
    if (!out.timeline_path.empty()) Timeline::Global().Enable();
    return out;
  }
};

// Captures every finished benchmark run as a report row alongside the
// normal console output.
class ReportingReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(RunReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      ResultRow row;
      // "shape/kernel/batch" -> kernel = "shape/kernel", config batch.
      const std::string name = run.benchmark_name();
      const std::size_t slash = name.find_last_of('/');
      row.kernel = slash == std::string::npos ? name : name.substr(0, slash);
      row.config.emplace_back(
          "batch",
          slash == std::string::npos ? "0" : name.substr(slash + 1));
      MetricStat mlps;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        mlps.mean = items->second.value / 1e6;
      }
      row.metrics.emplace_back("mlps", mlps);
      MetricStat wall;
      wall.mean = run.GetAdjustedRealTime();
      row.metrics.emplace_back("wall_time", wall);
      report_->results.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  RunReport* report_;
};

// A lazily-built fixture per layout shape, shared across kernels.
template <typename K, typename V>
struct Fixture {
  std::unique_ptr<CuckooTable<K, V>> table;
  std::vector<K> queries;

  Fixture(unsigned ways, unsigned slots, BucketLayout layout) {
    // 16-bit keys can only populate ~64 K distinct entries; keep the table
    // small enough that the fill target and a miss pool both fit.
    const std::uint64_t total_slots = sizeof(K) == 2 ? (1u << 14)
                                                     : (1u << 17);
    table = std::make_unique<CuckooTable<K, V>>(ways, slots,
                                                total_slots / slots, layout);
    auto build = FillToLoadFactor(table.get(), 0.85, 11);
    auto misses = UniqueRandomKeys<K>(4096, 13, &build.inserted_keys);
    WorkloadConfig wc;
    wc.hit_rate = 0.9;
    wc.num_queries = 1 << 16;
    wc.seed = 17;
    queries = GenerateQueries(build.inserted_keys, misses, wc);
  }
};

template <typename K, typename V>
void RunKernelBench(benchmark::State& state, const KernelInfo* kernel,
                    Fixture<K, V>* fixture) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<V> vals(batch);
  std::vector<std::uint8_t> found(batch);
  const TableView view = fixture->table->view();
  std::size_t offset = 0;
  for (auto _ : state) {
    if (offset + batch > fixture->queries.size()) offset = 0;
    const std::uint64_t hits = kernel->Lookup(
        view, ProbeBatch::Of(fixture->queries.data() + offset, vals.data(),
                             found.data(), batch));
    benchmark::DoNotOptimize(hits);
    offset += batch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

template <typename K, typename V>
void RegisterShape(const char* shape_name, unsigned ways, unsigned slots,
                   BucketLayout layout) {
  LayoutSpec spec;
  spec.ways = ways;
  spec.slots = slots;
  spec.key_bits = sizeof(K) * 8;
  spec.val_bits = sizeof(V) * 8;
  spec.bucket_layout = layout;

  auto* fixture = new Fixture<K, V>(ways, slots, layout);  // lives forever
  if (fixture->queries.empty()) {
    std::fprintf(stderr, "skipping %s: workload generation failed\n",
                 shape_name);
    return;
  }
  for (const KernelInfo& kernel : KernelRegistry::Get().all()) {
    if (!kernel.Matches(spec)) continue;
    if (!GetCpuFeatures().Supports(kernel.level)) continue;
    const std::string name =
        std::string(shape_name) + "/" + kernel.name;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [&kernel, fixture](benchmark::State& state) {
          RunKernelBench<K, V>(state, &kernel, fixture);
        })
        ->Arg(16)
        ->Arg(256)
        ->Arg(4096);
  }
}

}  // namespace
}  // namespace simdht

int main(int argc, char** argv) {
  using simdht::BucketLayout;
  const auto report_flags = simdht::ReportFlags::Strip(&argc, argv);
  simdht::RegisterShape<std::uint32_t, std::uint32_t>(
      "bcht_2x4_k32", 2, 4, BucketLayout::kInterleaved);
  simdht::RegisterShape<std::uint32_t, std::uint32_t>(
      "cuckoo_3way_k32", 3, 1, BucketLayout::kInterleaved);
  simdht::RegisterShape<std::uint64_t, std::uint64_t>(
      "cuckoo_3way_k64", 3, 1, BucketLayout::kInterleaved);
  simdht::RegisterShape<std::uint16_t, std::uint32_t>(
      "bcht_2x8_k16_split", 2, 8, BucketLayout::kSplit);
  benchmark::Initialize(&argc, argv);
  simdht::RunReport report =
      simdht::NewRunReport("micro_kernels", "Raw lookup-kernel microbench");
  simdht::ReportingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return simdht::WriteReportOutputs(report, report_flags.json_path,
                                    report_flags.timeline_path,
                                    /*quiet=*/false);
}
