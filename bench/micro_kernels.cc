// google-benchmark microbenchmarks for the raw lookup kernels.
//
// Measures each registered kernel over a fixed cache-resident table,
// sweeping the batch size — the per-call costs (hash, gather, compare,
// reduce) without the performance engine around them. Covers both table
// families: the cuckoo/BCHT shapes and the Swiss control-byte layout.
//
// `--check` runs the kernel parity gate instead of the benchmarks: every
// registered kernel (all families, every supported ISA tier) is replayed
// over the fixture workload and its (found, value) outputs are compared
// probe-by-probe against the scalar twin of the same layout. Exits nonzero
// on any divergence — scripts/check.sh and CI wire this in as the
// SIMD-vs-scalar equivalence gate.
#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "core/workload.h"
#include "ht/cuckoo_table.h"
#include "ht/swiss_table.h"
#include "ht/table_builder.h"
#include "obs/run_report.h"
#include "obs/timeline.h"
#include "simd/kernel.h"

namespace simdht {
namespace {

// google-benchmark owns argv parsing here, so the shared report flags are
// peeled off before Initialize() sees (and rejects) them.
struct ReportFlags {
  std::string json_path;
  std::string timeline_path;
  bool check = false;

  static ReportFlags Strip(int* argc, char** argv) {
    ReportFlags out;
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--json=", 7) == 0) {
        out.json_path = arg + 7;
      } else if (std::strncmp(arg, "--timeline=", 11) == 0) {
        out.timeline_path = arg + 11;
      } else if (std::strcmp(arg, "--check") == 0) {
        out.check = true;
      } else {
        argv[kept++] = argv[i];
      }
    }
    *argc = kept;
    if (!out.timeline_path.empty()) Timeline::Global().Enable();
    return out;
  }
};

// Captures every finished benchmark run as a report row alongside the
// normal console output.
class ReportingReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(RunReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      ResultRow row;
      // "shape/kernel/batch" -> kernel = "shape/kernel", config batch.
      const std::string name = run.benchmark_name();
      const std::size_t slash = name.find_last_of('/');
      row.kernel = slash == std::string::npos ? name : name.substr(0, slash);
      row.config.emplace_back(
          "batch",
          slash == std::string::npos ? "0" : name.substr(slash + 1));
      MetricStat mlps;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        mlps.mean = items->second.value / 1e6;
      }
      row.metrics.emplace_back("mlps", mlps);
      MetricStat wall;
      wall.mean = run.GetAdjustedRealTime();
      row.metrics.emplace_back("wall_time", wall);
      report_->results.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  RunReport* report_;
};

// Parity thunks registered alongside the benchmarks; `--check` runs these
// instead and returns the failure count.
std::vector<std::function<int()>>& CheckThunks() {
  static std::vector<std::function<int()>> thunks;
  return thunks;
}

// Replays every kernel matching `spec` on this CPU and diffs its outputs
// against the layout's scalar twin. Returns the number of failing kernels.
template <typename K, typename V>
int CheckKernelParity(const std::string& shape_name, const LayoutSpec& spec,
                      const TableView& view, const std::vector<K>& queries) {
  const KernelInfo* scalar = KernelRegistry::Get().Scalar(spec);
  if (scalar == nullptr) {
    std::fprintf(stderr, "FAIL %s: no scalar twin registered for %s\n",
                 shape_name.c_str(), spec.ToString().c_str());
    return 1;
  }
  const std::size_t n = queries.size();
  std::vector<V> ref_vals(n), vals(n);
  std::vector<std::uint8_t> ref_found(n), found(n);
  scalar->Lookup(view,
                 ProbeBatch::Of(queries.data(), ref_vals.data(),
                                ref_found.data(), n));
  int failures = 0;
  for (const KernelInfo& kernel : KernelRegistry::Get().all()) {
    if (&kernel == scalar) continue;
    if (!kernel.Matches(spec)) continue;
    if (!GetCpuFeatures().Supports(kernel.level)) continue;
    std::fill(vals.begin(), vals.end(), V{0});
    std::fill(found.begin(), found.end(), std::uint8_t{0});
    kernel.Lookup(view,
                  ProbeBatch::Of(queries.data(), vals.data(), found.data(),
                                 n));
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (found[i] != ref_found[i] ||
          (found[i] != 0 && vals[i] != ref_vals[i])) {
        ++mismatches;
      }
    }
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL %s/%s: %zu of %zu probes diverge from %s\n",
                   shape_name.c_str(), kernel.name.c_str(), mismatches, n,
                   scalar->name.c_str());
      ++failures;
    } else {
      std::printf("ok   %-22s %-28s (%zu probes vs %s)\n",
                  shape_name.c_str(), kernel.name.c_str(), n,
                  scalar->name.c_str());
    }
  }
  return failures;
}

template <typename K, typename V>
void RunKernelBench(benchmark::State& state, const KernelInfo* kernel,
                    const TableView view, const std::vector<K>* queries,
                    std::vector<V>* vals, std::vector<std::uint8_t>* found) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  vals->resize(batch);
  found->resize(batch);
  std::size_t offset = 0;
  for (auto _ : state) {
    if (offset + batch > queries->size()) offset = 0;
    const std::uint64_t hits = kernel->Lookup(
        view, ProbeBatch::Of(queries->data() + offset, vals->data(),
                             found->data(), batch));
    benchmark::DoNotOptimize(hits);
    offset += batch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

// Registers the benchmarks (or, in check mode, the parity thunk) for one
// built table + workload.
template <typename K, typename V>
void RegisterKernels(const std::string& shape_name, const LayoutSpec& spec,
                     const TableView view,
                     const std::vector<K>* queries, bool check) {
  if (queries->empty()) {
    std::fprintf(stderr, "skipping %s: workload generation failed\n",
                 shape_name.c_str());
    return;
  }
  if (check) {
    CheckThunks().push_back([shape_name, spec, view, queries] {
      return CheckKernelParity<K, V>(shape_name, spec, view, *queries);
    });
    return;
  }
  for (const KernelInfo& kernel : KernelRegistry::Get().all()) {
    if (!kernel.Matches(spec)) continue;
    if (!GetCpuFeatures().Supports(kernel.level)) continue;
    const std::string name = shape_name + "/" + kernel.name;
    auto* vals = new std::vector<V>();                // lives forever
    auto* found = new std::vector<std::uint8_t>();    // lives forever
    benchmark::RegisterBenchmark(
        name.c_str(),
        [&kernel, view, queries, vals, found](benchmark::State& state) {
          RunKernelBench<K, V>(state, &kernel, view, queries, vals, found);
        })
        ->Arg(16)
        ->Arg(256)
        ->Arg(4096);
  }
}

// A lazily-built cuckoo fixture per layout shape, shared across kernels.
template <typename K, typename V>
void RegisterShape(const char* shape_name, unsigned ways, unsigned slots,
                   BucketLayout layout, bool check) {
  LayoutSpec spec;
  spec.ways = ways;
  spec.slots = slots;
  spec.key_bits = sizeof(K) * 8;
  spec.val_bits = sizeof(V) * 8;
  spec.bucket_layout = layout;

  // 16-bit keys can only populate ~64 K distinct entries; keep the table
  // small enough that the fill target and a miss pool both fit.
  const std::uint64_t total_slots = sizeof(K) == 2 ? (1u << 14) : (1u << 17);
  auto* table = new CuckooTable<K, V>(ways, slots, total_slots / slots,
                                      layout);  // lives forever
  auto build = FillToLoadFactor(table, 0.85, 11);
  auto misses = UniqueRandomKeys<K>(4096, 13, &build.inserted_keys);
  WorkloadConfig wc;
  wc.hit_rate = 0.9;
  wc.num_queries = 1 << 16;
  wc.seed = 17;
  auto* queries = new std::vector<K>(
      GenerateQueries(build.inserted_keys, misses, wc));  // lives forever
  RegisterKernels<K, V>(shape_name, spec, table->view(), queries, check);
}

// Swiss fixtures: same workload recipe over the control-byte family. The
// erase pass leaves tombstones behind so the parity gate exercises the
// TOMBSTONE-vs-EMPTY probe-termination rule, not just pristine tables.
template <typename K, typename V>
void RegisterSwissShape(const char* shape_name, bool check) {
  const LayoutSpec spec = LayoutSpec::Swiss(sizeof(K) * 8, sizeof(V) * 8);
  const std::uint64_t total_slots = sizeof(K) == 2 ? (1u << 14) : (1u << 17);
  auto* table =
      new SwissTable<K, V>(total_slots / kSwissGroupSlots);  // lives forever
  auto build = FillToLoadFactor(table, 0.85, 11);
  for (std::size_t i = 0; i < build.inserted_keys.size(); i += 7) {
    table->Erase(build.inserted_keys[i]);
  }
  std::vector<K> resident;
  for (std::size_t i = 0; i < build.inserted_keys.size(); ++i) {
    if (i % 7 != 0) resident.push_back(build.inserted_keys[i]);
  }
  auto misses = UniqueRandomKeys<K>(4096, 13, &build.inserted_keys);
  WorkloadConfig wc;
  wc.hit_rate = 0.9;
  wc.num_queries = 1 << 16;
  wc.seed = 17;
  auto* queries = new std::vector<K>(
      GenerateQueries(resident, misses, wc));  // lives forever
  RegisterKernels<K, V>(shape_name, spec, table->view(), queries, check);
}

}  // namespace
}  // namespace simdht

int main(int argc, char** argv) {
  using simdht::BucketLayout;
  const auto report_flags = simdht::ReportFlags::Strip(&argc, argv);
  const bool check = report_flags.check;
  simdht::RegisterShape<std::uint32_t, std::uint32_t>(
      "bcht_2x4_k32", 2, 4, BucketLayout::kInterleaved, check);
  simdht::RegisterShape<std::uint32_t, std::uint32_t>(
      "cuckoo_3way_k32", 3, 1, BucketLayout::kInterleaved, check);
  simdht::RegisterShape<std::uint64_t, std::uint64_t>(
      "cuckoo_3way_k64", 3, 1, BucketLayout::kInterleaved, check);
  simdht::RegisterShape<std::uint16_t, std::uint32_t>(
      "bcht_2x8_k16_split", 2, 8, BucketLayout::kSplit, check);
  simdht::RegisterSwissShape<std::uint32_t, std::uint32_t>("swiss_k32",
                                                           check);
  simdht::RegisterSwissShape<std::uint64_t, std::uint64_t>("swiss_k64",
                                                           check);
  simdht::RegisterSwissShape<std::uint16_t, std::uint32_t>("swiss_k16",
                                                           check);

  if (check) {
    int failures = 0;
    for (const auto& thunk : simdht::CheckThunks()) failures += thunk();
    if (failures != 0) {
      std::fprintf(stderr, "--check: %d kernel(s) diverge from scalar\n",
                   failures);
      return 1;
    }
    std::printf("--check: all kernels match their scalar twin\n");
    return 0;
  }

  benchmark::Initialize(&argc, argv);
  simdht::RunReport report =
      simdht::NewRunReport("micro_kernels", "Raw lookup-kernel microbench");
  simdht::ReportingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return simdht::WriteReportOutputs(report, report_flags.json_path,
                                    report_flags.timeline_path,
                                    /*quiet=*/false);
}
