// google-benchmark microbenchmarks for the raw lookup kernels.
//
// Measures each registered kernel over a fixed cache-resident table,
// sweeping the batch size — the per-call costs (hash, gather, compare,
// reduce) without the performance engine around them.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/cpu_features.h"
#include "core/workload.h"
#include "ht/cuckoo_table.h"
#include "ht/table_builder.h"
#include "simd/kernel.h"

namespace simdht {
namespace {

// A lazily-built fixture per layout shape, shared across kernels.
template <typename K, typename V>
struct Fixture {
  std::unique_ptr<CuckooTable<K, V>> table;
  std::vector<K> queries;

  Fixture(unsigned ways, unsigned slots, BucketLayout layout) {
    // 16-bit keys can only populate ~64 K distinct entries; keep the table
    // small enough that the fill target and a miss pool both fit.
    const std::uint64_t total_slots = sizeof(K) == 2 ? (1u << 14)
                                                     : (1u << 17);
    table = std::make_unique<CuckooTable<K, V>>(ways, slots,
                                                total_slots / slots, layout);
    auto build = FillToLoadFactor(table.get(), 0.85, 11);
    auto misses = UniqueRandomKeys<K>(4096, 13, &build.inserted_keys);
    WorkloadConfig wc;
    wc.hit_rate = 0.9;
    wc.num_queries = 1 << 16;
    wc.seed = 17;
    queries = GenerateQueries(build.inserted_keys, misses, wc);
  }
};

template <typename K, typename V>
void RunKernelBench(benchmark::State& state, const KernelInfo* kernel,
                    Fixture<K, V>* fixture) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<V> vals(batch);
  std::vector<std::uint8_t> found(batch);
  const TableView view = fixture->table->view();
  std::size_t offset = 0;
  for (auto _ : state) {
    if (offset + batch > fixture->queries.size()) offset = 0;
    const std::uint64_t hits = kernel->Lookup(
        view, ProbeBatch::Of(fixture->queries.data() + offset, vals.data(),
                             found.data(), batch));
    benchmark::DoNotOptimize(hits);
    offset += batch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

template <typename K, typename V>
void RegisterShape(const char* shape_name, unsigned ways, unsigned slots,
                   BucketLayout layout) {
  LayoutSpec spec;
  spec.ways = ways;
  spec.slots = slots;
  spec.key_bits = sizeof(K) * 8;
  spec.val_bits = sizeof(V) * 8;
  spec.bucket_layout = layout;

  auto* fixture = new Fixture<K, V>(ways, slots, layout);  // lives forever
  if (fixture->queries.empty()) {
    std::fprintf(stderr, "skipping %s: workload generation failed\n",
                 shape_name);
    return;
  }
  for (const KernelInfo& kernel : KernelRegistry::Get().all()) {
    if (!kernel.Matches(spec)) continue;
    if (!GetCpuFeatures().Supports(kernel.level)) continue;
    const std::string name =
        std::string(shape_name) + "/" + kernel.name;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [&kernel, fixture](benchmark::State& state) {
          RunKernelBench<K, V>(state, &kernel, fixture);
        })
        ->Arg(16)
        ->Arg(256)
        ->Arg(4096);
  }
}

}  // namespace
}  // namespace simdht

int main(int argc, char** argv) {
  using simdht::BucketLayout;
  simdht::RegisterShape<std::uint32_t, std::uint32_t>(
      "bcht_2x4_k32", 2, 4, BucketLayout::kInterleaved);
  simdht::RegisterShape<std::uint32_t, std::uint32_t>(
      "cuckoo_3way_k32", 3, 1, BucketLayout::kInterleaved);
  simdht::RegisterShape<std::uint64_t, std::uint64_t>(
      "cuckoo_3way_k64", 3, 1, BucketLayout::kInterleaved);
  simdht::RegisterShape<std::uint16_t, std::uint32_t>(
      "bcht_2x8_k16_split", 2, 8, BucketLayout::kSplit);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
