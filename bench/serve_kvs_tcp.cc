// Serving-transport study: simulated channel vs real TCP sockets.
//
// The fig11 bench measures the KVS through the simulated transport
// (kvs/transport.h's in-process Channel with a wire-delay model). This
// binary runs the same Multi-Get workload through a selectable transport:
//
//   --transport=sim   RunMemslap over the simulated Channel — the exact
//                     code path fig11 uses, kept bit-compatible so the two
//                     binaries stay comparable.
//   --transport=tcp   in-process KvTcpServer cluster on loopback sockets,
//                     driven by the open-loop RunTcpLoadgen harness. Extra
//                     columns report the achieved rate and the
//                     cross-connection batch occupancy the epoll server
//                     reached (kvs.net.batch_connections.max).
//
// TCP-mode knobs: --servers=N (cluster size), --conns=N (driver threads),
// --qps=R + --arrival=uniform|poisson|closed (open-loop rate), --mget=K.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kvs/loadgen.h"
#include "kvs/memc3_backend.h"
#include "kvs/simd_backend.h"
#include "net/kv_tcp_server.h"
#include "net/open_loop.h"

using namespace simdht;
using namespace simdht::bench;

namespace {

struct Candidate {
  const char* label;
  std::unique_ptr<KvBackend> (*make)(std::uint64_t, std::size_t);
  SimdLevel needs;
};

const Candidate kCandidates[] = {
    {"MemC3 (non-SIMD baseline)",
     [](std::uint64_t e, std::size_t m) -> std::unique_ptr<KvBackend> {
       return std::make_unique<Memc3Backend>(e, m);
     },
     SimdLevel::kScalar},
    {"Bucket-Cuckoo-Hor(AVX-256)",
     [](std::uint64_t e, std::size_t m) -> std::unique_ptr<KvBackend> {
       return std::make_unique<SimdBackend>(
           SimdBackend::BucketCuckooHorAvx2(), e, m);
     },
     SimdLevel::kAvx2},
    {"Cuckoo-Ver(AVX-512)",
     [](std::uint64_t e, std::size_t m) -> std::unique_ptr<KvBackend> {
       return std::make_unique<SimdBackend>(
           SimdBackend::CuckooVerAvx512(), e, m);
     },
     SimdLevel::kAvx512},
};

double StatValue(const StatsPairs& stats, const std::string& name) {
  for (const auto& [key, value] : stats) {
    if (key == name) return value;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  const std::string transport = flags.GetString("transport", "sim");
  if (transport != "sim" && transport != "tcp") {
    std::fprintf(stderr, "unknown --transport '%s' (want sim|tcp)\n",
                 transport.c_str());
    return 2;
  }
  const unsigned servers =
      static_cast<unsigned>(flags.GetInt("servers", 2));
  const unsigned conns = static_cast<unsigned>(flags.GetInt("conns", 4));
  const unsigned mget = static_cast<unsigned>(flags.GetInt("mget", 16));
  const double qps = flags.GetDouble("qps", 20000.0);
  const std::string arrival_name = flags.GetString("arrival", "uniform");
  ArrivalMode arrival = ArrivalMode::kUniform;
  if (!ParseArrivalMode(arrival_name, &arrival)) {
    std::fprintf(stderr, "unknown --arrival '%s'\n", arrival_name.c_str());
    return 2;
  }

  PrintHeader("KVS serving transport: simulated channel vs real TCP", opt);
  ReportSession session(opt, "KVS serving transport comparison");

  const std::size_t num_keys = opt.quick ? 100000 : 2000000;
  const std::size_t requests_per_client = opt.quick ? 1500 : 8000;
  const std::uint64_t ht_entries = num_keys * 2;
  const std::size_t mem_limit = std::size_t{2} << 30;

  TablePrinter table({"transport", "backend", "MGet mean us", "p50 us",
                      "p99 us", "p999 us", "achieved qps", "batch occ max"});

  for (const Candidate& candidate : kCandidates) {
    if (!GetCpuFeatures().Supports(candidate.needs)) continue;

    if (transport == "sim") {
      // Bit-compatible with fig11: same RunMemslap driver, same simulated
      // wire model, closed-loop paper protocol.
      MemslapConfig config;
      config.clients = opt.threads ? opt.threads : 2;
      config.num_keys = num_keys;
      config.requests_per_client = requests_per_client;
      config.mget_size = mget;
      config.seed = opt.seed;
      auto backend = candidate.make(ht_entries, mem_limit);
      const MemslapResult r = RunMemslap(backend.get(), config);
      table.AddRow({"sim", candidate.label,
                    TablePrinter::Fmt(r.mget_mean_us, 1),
                    TablePrinter::Fmt(r.mget_p50_us, 1),
                    TablePrinter::Fmt(r.mget_p99_us, 1),
                    TablePrinter::Fmt(r.mget_p999_us, 1),
                    TablePrinter::Fmt(r.client_mgets_per_sec, 0), "-"});
      session.AddRow(
          candidate.label,
          {{"transport", "sim"}, {"mget", std::to_string(mget)}},
          {{"mget_mean_us", ReportSession::Stat(r.mget_mean_us)},
           {"mget_p50_us", ReportSession::Stat(r.mget_p50_us)},
           {"mget_p99_us", ReportSession::Stat(r.mget_p99_us)},
           {"mget_p999_us", ReportSession::Stat(r.mget_p999_us)},
           {"achieved_qps", ReportSession::Stat(r.client_mgets_per_sec)},
           {"server_get_mops", ReportSession::Stat(r.server_get_mops)}});
      continue;
    }

    // --transport=tcp: an in-process loopback cluster under the open-loop
    // harness. One backend per server (the cluster client shards keys).
    std::vector<std::unique_ptr<KvBackend>> backends;
    std::vector<std::unique_ptr<KvTcpServer>> cluster;
    TcpLoadgenConfig config;
    bool up = true;
    for (unsigned s = 0; s < servers; ++s) {
      backends.push_back(candidate.make(ht_entries / servers + 1,
                                        mem_limit / servers));
      cluster.push_back(
          std::make_unique<KvTcpServer>(backends.back().get()));
      std::string err;
      if (!cluster.back()->StartBackground(&err)) {
        std::fprintf(stderr, "server %u failed to start: %s\n", s,
                     err.c_str());
        up = false;
        break;
      }
      config.servers.push_back({"127.0.0.1", cluster.back()->port()});
    }
    TcpLoadgenResult r;
    std::string err;
    bool ok = false;
    if (up) {
      config.clients = conns;
      config.num_keys = num_keys;
      config.requests_per_client =
          requests_per_client / (conns ? conns : 1) + 1;
      config.mget_size = mget;
      config.arrival = arrival;
      config.target_qps = qps;
      config.seed = opt.seed;
      ok = RunTcpLoadgen(config, &r, &err);
      if (!ok) std::fprintf(stderr, "loadgen: %s\n", err.c_str());
    }
    for (auto& server : cluster) {
      server->Stop();
      server->Join();
    }
    if (!ok) continue;

    double occ_max = 0;
    // Server-phase tails across the cluster (worst server). Metric names
    // carry an explicit _ns suffix: the wire snapshot serves nanoseconds
    // (it declares units.phase_ns=1), never raw TSC cycles — rows from
    // different machines stay comparable without knowing either TSC rate.
    double probe_p50_ns = 0, probe_p99_ns = 0, probe_p999_ns = 0;
    double copy_p99_ns = 0, transport_p99_ns = 0;
    for (const StatsPairs& stats : r.server_stats) {
      const double m = StatValue(stats, "batch_connections.max");
      if (m > occ_max) occ_max = m;
      probe_p50_ns =
          std::max(probe_p50_ns, StatValue(stats, "index_probe_ns.p50"));
      probe_p99_ns =
          std::max(probe_p99_ns, StatValue(stats, "index_probe_ns.p99"));
      probe_p999_ns =
          std::max(probe_p999_ns, StatValue(stats, "index_probe_ns.p999"));
      copy_p99_ns =
          std::max(copy_p99_ns, StatValue(stats, "value_copy_ns.p99"));
      transport_p99_ns =
          std::max(transport_p99_ns, StatValue(stats, "transport_ns.p99"));
    }
    table.AddRow({"tcp", candidate.label,
                  TablePrinter::Fmt(r.mget_mean_us, 1),
                  TablePrinter::Fmt(r.mget_p50_us, 1),
                  TablePrinter::Fmt(r.mget_p99_us, 1),
                  TablePrinter::Fmt(r.mget_p999_us, 1),
                  TablePrinter::Fmt(r.achieved_qps, 0),
                  TablePrinter::Fmt(occ_max, 0)});
    session.AddRow(
        candidate.label,
        {{"transport", "tcp"},
         {"mget", std::to_string(mget)},
         {"servers", std::to_string(servers)},
         {"arrival", ArrivalModeName(arrival)}},
        {{"mget_mean_us", ReportSession::Stat(r.mget_mean_us)},
         {"mget_p50_us", ReportSession::Stat(r.mget_p50_us)},
         {"mget_p99_us", ReportSession::Stat(r.mget_p99_us)},
         {"mget_p999_us", ReportSession::Stat(r.mget_p999_us)},
         {"intended_qps", ReportSession::Stat(r.intended_qps)},
         {"achieved_qps", ReportSession::Stat(r.achieved_qps)},
         {"max_send_lag_us", ReportSession::Stat(r.max_send_lag_us)},
         {"key_errors",
          ReportSession::Stat(static_cast<double>(r.key_errors))},
         {"batch_connections_max", ReportSession::Stat(occ_max)},
         {"server_index_probe_p50_ns", ReportSession::Stat(probe_p50_ns)},
         {"server_index_probe_p99_ns", ReportSession::Stat(probe_p99_ns)},
         {"server_index_probe_p999_ns",
          ReportSession::Stat(probe_p999_ns)},
         {"server_value_copy_p99_ns", ReportSession::Stat(copy_p99_ns)},
         {"server_transport_p99_ns",
          ReportSession::Stat(transport_p99_ns)}});
  }

  if (!opt.csv) {
    std::printf("transport=%s", transport.c_str());
    if (transport == "tcp") {
      std::printf("  servers=%u  conns=%u  arrival=%s  qps=%.0f", servers,
                  conns, ArrivalModeName(arrival), qps);
    }
    std::printf("\n");
  }
  Emit(table, opt);
  return session.Finish();
}
