// Fig 5 / Case Study 1(a): horizontal vs vertical SIMD approaches across
// the (N, m) sweep, uniform vs skewed access, 1 MB HT, (K,V) = (32,32),
// LF = 90% (where achievable), hit rate 90%.
//
// Paper shape to look for: vector beats scalar everywhere under uniform
// access (up to ~3x); under skew the scalar baseline benefits from cache
// locality so speedups shrink (1.2x-2x), with 3-way vertical and (2,4)
// horizontal the best LF/performance combinations.
//
// The sweep is three-way: next to the cuckoo (N, m) grid it measures the
// Swiss control-byte design (one probe family, 16-slot groups) so BCHT
// horizontal, BCHT vertical and Swiss appear in one table/report.
#include "bench_common.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader(
      "Fig 5 / Case Study 1(a): horizontal vs vertical, uniform vs skew",
      opt);
  ReportSession session(opt,
                        "Fig 5: horizontal vs vertical, uniform vs skew");

  std::vector<std::string> headers = {"layout", "pattern", "LF",
                                      "kernel", "width", "Mlookups/s/core",
                                      "stddev", "speedup vs scalar"};
  AppendPerfColumns(opt, &headers);
  TablePrinter table(std::move(headers));

  std::vector<LayoutSpec> layouts = CaseStudy1Layouts();
  layouts.push_back(LayoutSpec::Swiss(32, 32));

  for (const AccessPattern pattern :
       {AccessPattern::kUniform, AccessPattern::kZipfian}) {
    for (const LayoutSpec& layout : layouts) {
      CaseSpec spec = PaperCaseDefaults(opt);
      spec.layout = layout;
      spec.table_bytes = 1 << 20;
      spec.pattern = pattern;

      const CaseResult result = RunCaseAuto(spec);
      session.AddCase(result, {{"layout", layout.ToString()},
                               {"pattern", AccessPatternName(pattern)}});
      for (const MeasuredKernel& k : result.kernels) {
        std::vector<std::string> row = {
            layout.ToString(), AccessPatternName(pattern),
            TablePrinter::Fmt(result.achieved_load_factor, 2), k.name,
            k.approach == Approach::kScalar
                ? "64"
                : TablePrinter::Fmt(std::int64_t{k.width_bits}),
            TablePrinter::Fmt(k.mlps_per_core, 1),
            TablePrinter::Fmt(k.stddev_mlps, 1),
            k.approach == Approach::kScalar ? "1.00"
                                            : TablePrinter::Fmt(k.speedup, 2)};
        AppendPerfCells(opt, k, &row);
        table.AddRow(std::move(row));
      }
    }
  }
  Emit(table, opt);
  PrintPerfFooter(opt);
  return session.Finish();
}
