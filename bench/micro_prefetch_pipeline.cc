// Prefetch-pipeline microbench: direct kernel calls vs the group/AMAC
// software-prefetch schedules, swept over table size x group size.
//
// The crossover the pipeline is built for: once the table outgrows the
// last-level cache, every probe misses DRAM and lookup throughput is
// latency-bound. Prefetching the candidate buckets of a whole group of
// keys before running the compare kernel overlaps those misses; on
// cache-resident tables the extra pass is pure overhead. Single-threaded
// on purpose — memory-level parallelism per core is exactly what the
// schedule changes.
#include <algorithm>
#include <memory>

#include "bench_common.h"
#include "common/timer.h"
#include "core/workload.h"
#include "ht/cuckoo_table.h"
#include "ht/table_builder.h"
#include "simd/pipeline.h"

using namespace simdht;
using namespace simdht::bench;

namespace {

double MeasureMlps(const KernelInfo& kernel, const TableView& view,
                   const std::vector<std::uint32_t>& queries,
                   const PipelineConfig& config, unsigned repeats,
                   std::size_t batch, const PerfOptions& perf,
                   MeasuredKernel* perf_row) {
  std::vector<std::uint32_t> vals(queries.size());
  std::vector<std::uint8_t> found(queries.size());
  RunningStat stat;
  for (unsigned rep = 0; rep < repeats; ++rep) {
    CounterGroup counters(perf.enabled
                              ? (perf.events.empty() ? DefaultPerfEvents()
                                                     : perf.events)
                              : std::vector<PerfEvent>{});
    if (perf.enabled) counters.Start();
    Timer t;
    for (std::size_t off = 0; off < queries.size(); off += batch) {
      const std::size_t chunk = std::min(batch, queries.size() - off);
      PipelinedLookup(kernel, view,
                      ProbeBatch::Of(queries.data() + off, vals.data() + off,
                                     found.data() + off, chunk),
                      config);
    }
    stat.Add(static_cast<double>(queries.size()) / t.ElapsedSeconds() / 1e6);
    if (perf.enabled) {
      perf_row->perf.Accumulate(counters.Stop());
      perf_row->perf_lookups += queries.size();
    }
  }
  perf_row->perf_collected = perf.enabled && perf_row->perf.valid_mask != 0;
  return stat.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Prefetch pipeline: table size x schedule sweep", opt);
  ReportSession session(opt, "Prefetch pipeline: size x schedule sweep");

  std::vector<std::uint64_t> sizes = {1 << 20, 16 << 20, 64 << 20,
                                      256 << 20};
  if (opt.quick) sizes = {4 << 20, 64 << 20};

  const std::size_t queries =
      opt.queries_per_thread ? opt.queries_per_thread
                             : (opt.quick ? (1u << 20) : (1u << 22));
  const unsigned repeats = opt.repeats ? opt.repeats : (opt.quick ? 3 : 5);
  constexpr std::size_t kBatch = 4096;  // keys handed to one PipelinedLookup

  const PipelineConfig schedules[] = {
      {PrefetchPolicy::kNone, 0, 0},     {PrefetchPolicy::kGroup, 8, 1},
      {PrefetchPolicy::kGroup, 32, 1},   {PrefetchPolicy::kGroup, 128, 1},
      {PrefetchPolicy::kAmac, 16, 2},    {PrefetchPolicy::kAmac, 32, 4},
  };

  // The paper's BCHT representative; scalar twin + the widest horizontal
  // kernel this CPU supports.
  const LayoutSpec layout = Layout(2, 4);
  std::vector<const KernelInfo*> kernels = {
      KernelRegistry::Get().Scalar(layout)};
  const KernelInfo* widest = nullptr;
  for (const KernelInfo* k : KernelRegistry::Get().Find(
           KernelQuery{layout, Approach::kHorizontal})) {
    if (widest == nullptr || k->width_bits > widest->width_bits) widest = k;
  }
  if (widest != nullptr) kernels.push_back(widest);

  std::vector<std::string> headers = {"HT size", "kernel", "schedule",
                                      "Mlookups/s", "vs direct"};
  AppendPerfColumns(opt, &headers);
  TablePrinter table(std::move(headers));
  for (const std::uint64_t bytes : sizes) {
    auto tbl = std::make_unique<CuckooTable32>(
        layout.ways, layout.slots, BucketsForBytes(layout, bytes),
        layout.bucket_layout, opt.seed);
    auto build = FillToLoadFactor(tbl.get(), 0.9, opt.seed + 1);
    auto misses = UniqueRandomKeys<std::uint32_t>(
        std::max<std::size_t>(1024, build.inserted_keys.size() / 8),
        opt.seed + 2, &build.inserted_keys);
    WorkloadConfig wc;
    wc.pattern = AccessPattern::kUniform;
    wc.hit_rate = 0.9;
    wc.num_queries = queries;
    wc.seed = opt.seed + 3;
    const auto probe_stream =
        GenerateQueries(build.inserted_keys, misses, wc);
    const TableView view = tbl->view();

    for (const KernelInfo* kernel : kernels) {
      if (kernel == nullptr) continue;
      double direct_mlps = 0;
      for (const PipelineConfig& schedule : schedules) {
        MeasuredKernel perf_row;  // carries only the perf aggregate here
        const double mlps =
            MeasureMlps(*kernel, view, probe_stream, schedule, repeats,
                        kBatch, opt.perf, &perf_row);
        if (schedule.policy == PrefetchPolicy::kNone) direct_mlps = mlps;
        session.AddRow(
            kernel->name,
            {{"ht_size", std::to_string(bytes)},
             {"schedule", schedule.Describe()}},
            {{"mlps", ReportSession::Stat(mlps)},
             {"vs_direct",
              ReportSession::Stat(
                  direct_mlps > 0 ? mlps / direct_mlps : 1.0)}});
        std::vector<std::string> row = {
            HumanBytes(static_cast<double>(bytes)), kernel->name,
            schedule.Describe(), TablePrinter::Fmt(mlps, 1),
            schedule.policy == PrefetchPolicy::kNone
                ? "1.00"
                : TablePrinter::Fmt(mlps / direct_mlps, 2)};
        AppendPerfCells(opt, perf_row, &row);
        table.AddRow(std::move(row));
      }
    }
  }
  Emit(table, opt);
  PrintPerfFooter(opt);
  return session.Finish();
}
