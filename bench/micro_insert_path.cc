// Insertion-engine microbench: random-walk vs BFS path-search placement.
//
// For each (N, m) shape, fills a fresh table to saturation under both
// policies and reports the achieved load factor (median and min-max band
// over the seed set), successful-insert throughput, and the engine's
// failure/recovery counters. The walk configuration disables the stash and
// rebuild tiers so it reproduces the legacy insert path; the BFS
// configuration runs the full engine (path search + stash + rebuild).
//
// --check turns the run into a regression gate (used by scripts/check.sh
// and CI): exits non-zero unless BFS (4,8) reaches >= 0.95 LF and BFS (2,1)
// lands inside the theoretical non-bucketized band.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "ht/table_builder.h"

using namespace simdht;
using namespace simdht::bench;

namespace {

struct Shape {
  unsigned n, m;
};

struct PolicyRun {
  const char* name;
  InsertPolicy policy;
  unsigned stash_capacity;
  bool rebuild;
};

struct ShapeResult {
  std::vector<double> lf_samples;  // sorted after collection
  double minserts_per_sec = 0.0;   // mean over seeds
  double failed_inserts = 0.0;     // mean over seeds
  double rebuilds = 0.0;           // mean over seeds
  double stash_used = 0.0;         // mean over seeds
  double median_lf() const {
    const std::size_t k = lf_samples.size();
    return (k % 2) != 0 ? lf_samples[k / 2]
                        : 0.5 * (lf_samples[k / 2 - 1] + lf_samples[k / 2]);
  }
};

ShapeResult RunShape(const Shape& shape, const PolicyRun& policy,
                     std::uint64_t buckets, unsigned seeds,
                     std::uint64_t base_seed) {
  ShapeResult out;
  RunningStat rate, failed, rebuilds, stash;
  for (unsigned i = 0; i < seeds; ++i) {
    std::uint64_t s = base_seed + 0x9E3779B97F4A7C15ULL * (i + 1);
    if (s == 0) s = 1;
    CuckooTable<std::uint32_t, std::uint32_t> table(
        shape.n, shape.m, buckets, BucketLayout::kInterleaved, s);
    table.set_insert_policy(policy.policy);
    table.set_stash_capacity(policy.stash_capacity);
    table.set_rebuild_enabled(policy.rebuild);

    Timer timer;
    const BuildResult<std::uint32_t> result =
        FillToSaturation(&table, Mix64(s) | 1);
    const double secs = timer.ElapsedSeconds();

    out.lf_samples.push_back(result.achieved_load_factor);
    const double landed = static_cast<double>(result.inserted_keys.size());
    rate.Add(secs > 0.0 ? landed / secs / 1e6 : 0.0);
    failed.Add(static_cast<double>(result.failed_inserts));
    rebuilds.Add(static_cast<double>(table.insert_stats().rebuilds));
    stash.Add(static_cast<double>(table.stash_count()));
  }
  std::sort(out.lf_samples.begin(), out.lf_samples.end());
  out.minserts_per_sec = rate.mean();
  out.failed_inserts = failed.mean();
  out.rebuilds = rebuilds.mean();
  out.stash_used = stash.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  bool check = false;
  for (const auto& [name, value] : opt.raw_flags) {
    if (name == "check") check = true;
    (void)value;
  }
  PrintHeader("Insertion engine: random-walk vs BFS path search", opt);
  ReportSession session(opt, "Insertion engine: walk vs BFS path search");

  // Comparable slot count across shapes: scale buckets down by m.
  const std::uint64_t base_buckets = opt.quick ? (1u << 12) : (1u << 15);
  const unsigned seeds = opt.quick ? 3 : 5;

  const Shape shapes[] = {{2, 1}, {3, 1}, {4, 1}, {2, 4}, {2, 8}, {4, 8}};
  const PolicyRun policies[] = {
      // Legacy configuration: bounded random walk, no stash, no rebuild.
      {"walk", InsertPolicy::kRandomWalk, 0, false},
      // The full engine at its defaults.
      {"bfs", InsertPolicy::kBfs, kDefaultStashCapacity, true},
  };

  TablePrinter table({"N", "m", "policy", "max LF (median)", "LF min-max",
                      "Minserts/s", "failed", "rebuilds", "stash"});
  double bfs_lf_4_8 = 0.0;
  double bfs_lf_2_1 = 0.0;
  for (const Shape& shape : shapes) {
    const std::uint64_t buckets = std::max<std::uint64_t>(
        1, base_buckets / shape.m);
    for (const PolicyRun& policy : policies) {
      const ShapeResult r =
          RunShape(shape, policy, buckets, seeds, opt.seed);
      const double median = r.median_lf();
      if (policy.policy == InsertPolicy::kBfs) {
        if (shape.n == 4 && shape.m == 8) bfs_lf_4_8 = median;
        if (shape.n == 2 && shape.m == 1) bfs_lf_2_1 = median;
      }
      char band[64];
      std::snprintf(band, sizeof(band), "%.3f-%.3f", r.lf_samples.front(),
                    r.lf_samples.back());
      table.AddRow({TablePrinter::Fmt(std::int64_t{shape.n}),
                    TablePrinter::Fmt(std::int64_t{shape.m}), policy.name,
                    TablePrinter::Fmt(median, 3), band,
                    TablePrinter::Fmt(r.minserts_per_sec, 2),
                    TablePrinter::Fmt(r.failed_inserts, 1),
                    TablePrinter::Fmt(r.rebuilds, 1),
                    TablePrinter::Fmt(r.stash_used, 1)});
      session.AddRow(
          std::string("insert/") + policy.name,
          {{"ways", std::to_string(shape.n)},
           {"slots", std::to_string(shape.m)},
           {"policy", policy.name}},
          {{"max_load_factor", ReportSession::Stat(median)},
           {"minserts_per_sec", ReportSession::Stat(r.minserts_per_sec)},
           {"failed_inserts", ReportSession::Stat(r.failed_inserts)},
           {"rebuilds", ReportSession::Stat(r.rebuilds)},
           {"stash_entries", ReportSession::Stat(r.stash_used)}});
    }
  }
  Emit(table, opt);

  const int report_rc = session.Finish();
  if (!check) return report_rc;

  // Regression gate. (4,8) BCHT must fill essentially full under BFS; (2,1)
  // non-bucketized cuckoo sits at the ~0.5 theoretical threshold — values
  // far outside that band mean the engine (or the measurement) regressed.
  int rc = report_rc;
  if (bfs_lf_4_8 < 0.95) {
    std::fprintf(stderr,
                 "CHECK FAILED: BFS (4,8) max LF %.3f < 0.95\n", bfs_lf_4_8);
    rc = 1;
  }
  if (bfs_lf_2_1 < 0.40 || bfs_lf_2_1 > 0.65) {
    std::fprintf(stderr,
                 "CHECK FAILED: BFS (2,1) max LF %.3f outside [0.40, 0.65]\n",
                 bfs_lf_2_1);
    rc = 1;
  }
  if (rc == 0 && !opt.csv) {
    std::printf("\ncheck: BFS (4,8) LF %.3f >= 0.95, (2,1) LF %.3f in "
                "[0.40, 0.65] — OK\n",
                bfs_lf_4_8, bfs_lf_2_1);
  }
  return rc;
}
