// Insertion-engine microbench: random-walk vs BFS path-search placement.
//
// For each (N, m) shape, fills a fresh table to saturation under both
// policies and reports the achieved load factor (median and min-max band
// over the seed set), successful-insert throughput, and the engine's
// failure/recovery counters. The walk configuration disables the stash and
// rebuild tiers so it reproduces the legacy insert path; the BFS
// configuration runs the full engine (path search + stash + rebuild).
//
// --check turns the run into a regression gate (used by scripts/check.sh
// and CI): exits non-zero unless BFS (4,8) reaches >= 0.95 LF and BFS (2,1)
// lands inside the theoretical non-bucketized band.
//
// --engine=batch switches to the write-path engine study: the same key set
// inserted through the scalar per-key loop and through BatchInsert (block
// hashing + write prefetch + SIMD empty-slot scans), on 64 MiB tables
// (4 MiB under --quick). Under --check it becomes the batched-write gate:
// the final table state must be byte-identical between the two engines
// (snapshot compare) and the cuckoo batch engine must be >= 1.5x the
// scalar loop at the full table size.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "ht/table_builder.h"
#include "ht/table_io.h"

using namespace simdht;
using namespace simdht::bench;

namespace {

struct Shape {
  unsigned n, m;
};

struct PolicyRun {
  const char* name;
  InsertPolicy policy;
  unsigned stash_capacity;
  bool rebuild;
};

struct ShapeResult {
  std::vector<double> lf_samples;  // sorted after collection
  double minserts_per_sec = 0.0;   // mean over seeds
  double failed_inserts = 0.0;     // mean over seeds
  double rebuilds = 0.0;           // mean over seeds
  double stash_used = 0.0;         // mean over seeds
  double median_lf() const {
    const std::size_t k = lf_samples.size();
    return (k % 2) != 0 ? lf_samples[k / 2]
                        : 0.5 * (lf_samples[k / 2 - 1] + lf_samples[k / 2]);
  }
};

ShapeResult RunShape(const Shape& shape, const PolicyRun& policy,
                     std::uint64_t buckets, unsigned seeds,
                     std::uint64_t base_seed) {
  ShapeResult out;
  RunningStat rate, failed, rebuilds, stash;
  for (unsigned i = 0; i < seeds; ++i) {
    std::uint64_t s = base_seed + 0x9E3779B97F4A7C15ULL * (i + 1);
    if (s == 0) s = 1;
    CuckooTable<std::uint32_t, std::uint32_t> table(
        shape.n, shape.m, buckets, BucketLayout::kInterleaved, s);
    table.set_insert_policy(policy.policy);
    table.set_stash_capacity(policy.stash_capacity);
    table.set_rebuild_enabled(policy.rebuild);

    Timer timer;
    const BuildResult<std::uint32_t> result =
        FillToSaturation(&table, Mix64(s) | 1);
    const double secs = timer.ElapsedSeconds();

    out.lf_samples.push_back(result.achieved_load_factor);
    const double landed = static_cast<double>(result.inserted_keys.size());
    rate.Add(secs > 0.0 ? landed / secs / 1e6 : 0.0);
    failed.Add(static_cast<double>(result.failed_inserts));
    rebuilds.Add(static_cast<double>(table.insert_stats().rebuilds));
    stash.Add(static_cast<double>(table.stash_count()));
  }
  std::sort(out.lf_samples.begin(), out.lf_samples.end());
  out.minserts_per_sec = rate.mean();
  out.failed_inserts = failed.mean();
  out.rebuilds = rebuilds.mean();
  out.stash_used = stash.mean();
  return out;
}

// --- the --engine=batch study: scalar loop vs batched mutation engine ---

struct EngineCase {
  std::string label;
  double scalar_mips = 0.0;  // Minserts/s, mean over seeds
  double batch_mips = 0.0;
  double speedup = 0.0;
  bool identical = true;  // snapshots and per-key results matched every seed
};

// The id -> key bijection used for the engine comparison: odd-constant
// multiply, distinct and never the empty sentinel for id < 2^32 - 1.
std::uint32_t EngineKey(std::uint64_t id) {
  return static_cast<std::uint32_t>((id + 1) * 2654435761u);
}

EngineCase RunCuckooEngineCase(std::uint64_t table_bytes, unsigned seeds,
                               std::uint64_t base_seed) {
  EngineCase out;
  out.label = "(2,4) BCHT k32/v32";
  const unsigned ways = 2, slots = 4;
  const std::uint64_t buckets =
      std::max<std::uint64_t>(1, table_bytes / (slots * 8));
  // 0.75 target: high enough that the table is cache-cold and buckets see
  // real occupancy, low enough that the conflict tail (scalar fallback)
  // stays a small fraction of the batch.
  const std::uint64_t count =
      static_cast<std::uint64_t>(0.75 * static_cast<double>(buckets * slots));
  std::vector<std::uint32_t> keys(count), vals(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    keys[i] = EngineKey(i);
    vals[i] = DeriveVal<std::uint32_t, std::uint32_t>(keys[i]);
  }
  RunningStat scalar_rate, batch_rate;
  for (unsigned it = 0; it < seeds; ++it) {
    std::uint64_t s = base_seed + 0x9E3779B97F4A7C15ULL * (it + 1);
    if (s == 0) s = 1;
    CuckooTable<std::uint32_t, std::uint32_t> scalar_table(
        ways, slots, buckets, BucketLayout::kInterleaved, s);
    std::vector<std::uint8_t> scalar_ok(count);
    Timer st;
    for (std::uint64_t i = 0; i < count; ++i) {
      scalar_ok[i] = scalar_table.Insert(keys[i], vals[i]) ? 1 : 0;
    }
    const double scalar_secs = st.ElapsedSeconds();

    CuckooTable<std::uint32_t, std::uint32_t> batch_table(
        ways, slots, buckets, BucketLayout::kInterleaved, s);
    std::vector<std::uint8_t> batch_ok(count);
    Timer bt;
    batch_table.BatchInsert(MutationBatch<std::uint32_t, std::uint32_t>::Of(
        keys.data(), vals.data(), batch_ok.data(), count));
    const double batch_secs = bt.ElapsedSeconds();

    const double n = static_cast<double>(count);
    scalar_rate.Add(scalar_secs > 0 ? n / scalar_secs / 1e6 : 0.0);
    batch_rate.Add(batch_secs > 0 ? n / batch_secs / 1e6 : 0.0);

    if (scalar_ok != batch_ok) out.identical = false;
    std::ostringstream a, b;
    SaveTable(scalar_table, a);
    SaveTable(batch_table, b);
    if (a.str() != b.str()) out.identical = false;
  }
  out.scalar_mips = scalar_rate.mean();
  out.batch_mips = batch_rate.mean();
  out.speedup = out.scalar_mips > 0 ? out.batch_mips / out.scalar_mips : 0.0;
  return out;
}

EngineCase RunSwissEngineCase(std::uint64_t table_bytes, unsigned seeds,
                              std::uint64_t base_seed) {
  EngineCase out;
  out.label = "Swiss k32/v32";
  const std::uint64_t groups =
      std::max<std::uint64_t>(1, table_bytes / (kSwissGroupSlots * 8));
  std::uint64_t count = 0;  // sized off the first table's real capacity
  std::vector<std::uint32_t> keys, vals;
  RunningStat scalar_rate, batch_rate;
  for (unsigned it = 0; it < seeds; ++it) {
    std::uint64_t s = base_seed + 0x9E3779B97F4A7C15ULL * (it + 1);
    if (s == 0) s = 1;
    SwissTable<std::uint32_t, std::uint32_t> scalar_table(groups, s);
    if (count == 0) {
      count = static_cast<std::uint64_t>(
          0.8 * static_cast<double>(scalar_table.capacity()));
      keys.resize(count);
      vals.resize(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        keys[i] = EngineKey(i);
        vals[i] = DeriveVal<std::uint32_t, std::uint32_t>(keys[i]);
      }
    }
    std::vector<std::uint8_t> scalar_ok(count);
    Timer st;
    for (std::uint64_t i = 0; i < count; ++i) {
      scalar_ok[i] = scalar_table.Insert(keys[i], vals[i]) ? 1 : 0;
    }
    const double scalar_secs = st.ElapsedSeconds();

    SwissTable<std::uint32_t, std::uint32_t> batch_table(groups, s);
    std::vector<std::uint8_t> batch_ok(count);
    Timer bt;
    batch_table.BatchInsert(MutationBatch<std::uint32_t, std::uint32_t>::Of(
        keys.data(), vals.data(), batch_ok.data(), count));
    const double batch_secs = bt.ElapsedSeconds();

    const double n = static_cast<double>(count);
    scalar_rate.Add(scalar_secs > 0 ? n / scalar_secs / 1e6 : 0.0);
    batch_rate.Add(batch_secs > 0 ? n / batch_secs / 1e6 : 0.0);

    if (scalar_ok != batch_ok) out.identical = false;
    std::ostringstream a, b;
    SaveSwissTable(scalar_table, a);
    SaveSwissTable(batch_table, b);
    if (a.str() != b.str()) out.identical = false;
  }
  out.scalar_mips = scalar_rate.mean();
  out.batch_mips = batch_rate.mean();
  out.speedup = out.scalar_mips > 0 ? out.batch_mips / out.scalar_mips : 0.0;
  return out;
}

int RunEngineStudy(const BenchOptions& opt, bool check) {
  PrintHeader("Write-path engine: scalar loop vs batched mutation", opt);
  ReportSession session(opt, "Write-path engine: scalar vs batch");
  const std::uint64_t table_bytes =
      opt.quick ? (std::uint64_t{4} << 20) : (std::uint64_t{64} << 20);
  const unsigned seeds = opt.quick ? 2 : 3;

  TablePrinter table({"table", "bytes", "scalar Minserts/s",
                      "batch Minserts/s", "speedup", "bit-identical"});
  const EngineCase cases[] = {
      RunCuckooEngineCase(table_bytes, seeds, opt.seed),
      RunSwissEngineCase(table_bytes, seeds, opt.seed),
  };
  for (const EngineCase& c : cases) {
    table.AddRow({c.label,
                  TablePrinter::Fmt(static_cast<std::int64_t>(
                      table_bytes >> 20)) + " MiB",
                  TablePrinter::Fmt(c.scalar_mips, 2),
                  TablePrinter::Fmt(c.batch_mips, 2),
                  TablePrinter::Fmt(c.speedup, 2) + "x",
                  c.identical ? "yes" : "NO"});
    session.AddRow("insert-engine/batch",
                   {{"table", c.label},
                    {"table_bytes", std::to_string(table_bytes)}},
                   {{"scalar_minserts_per_sec", ReportSession::Stat(
                                                    c.scalar_mips)},
                    {"batch_minserts_per_sec", ReportSession::Stat(
                                                   c.batch_mips)},
                    {"speedup", ReportSession::Stat(c.speedup)},
                    {"bit_identical", ReportSession::Stat(
                                          c.identical ? 1.0 : 0.0)}});
  }
  Emit(table, opt);

  int rc = session.Finish();
  if (!check) return rc;
  for (const EngineCase& c : cases) {
    if (!c.identical) {
      std::fprintf(stderr,
                   "CHECK FAILED: %s batch state differs from scalar loop\n",
                   c.label.c_str());
      rc = 1;
    }
  }
  // The throughput bar applies to the cuckoo family at the full (64 MiB)
  // size — quick mode's smaller table stays a correctness-only gate.
  if (!opt.quick && cases[0].speedup < 1.5) {
    std::fprintf(stderr,
                 "CHECK FAILED: cuckoo batch speedup %.2fx < 1.5x\n",
                 cases[0].speedup);
    rc = 1;
  }
  if (rc == 0 && !opt.csv) {
    std::printf("\ncheck: batch engine bit-identical, cuckoo speedup "
                "%.2fx — OK\n",
                cases[0].speedup);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  bool check = false;
  bool batch_engine = false;
  for (const auto& [name, value] : opt.raw_flags) {
    if (name == "check") check = true;
    if (name == "engine") batch_engine = (value == "batch");
  }
  if (batch_engine) return RunEngineStudy(opt, check);
  PrintHeader("Insertion engine: random-walk vs BFS path search", opt);
  ReportSession session(opt, "Insertion engine: walk vs BFS path search");

  // Comparable slot count across shapes: scale buckets down by m.
  const std::uint64_t base_buckets = opt.quick ? (1u << 12) : (1u << 15);
  const unsigned seeds = opt.quick ? 3 : 5;

  const Shape shapes[] = {{2, 1}, {3, 1}, {4, 1}, {2, 4}, {2, 8}, {4, 8}};
  const PolicyRun policies[] = {
      // Legacy configuration: bounded random walk, no stash, no rebuild.
      {"walk", InsertPolicy::kRandomWalk, 0, false},
      // The full engine at its defaults.
      {"bfs", InsertPolicy::kBfs, kDefaultStashCapacity, true},
  };

  TablePrinter table({"N", "m", "policy", "max LF (median)", "LF min-max",
                      "Minserts/s", "failed", "rebuilds", "stash"});
  double bfs_lf_4_8 = 0.0;
  double bfs_lf_2_1 = 0.0;
  for (const Shape& shape : shapes) {
    const std::uint64_t buckets = std::max<std::uint64_t>(
        1, base_buckets / shape.m);
    for (const PolicyRun& policy : policies) {
      const ShapeResult r =
          RunShape(shape, policy, buckets, seeds, opt.seed);
      const double median = r.median_lf();
      if (policy.policy == InsertPolicy::kBfs) {
        if (shape.n == 4 && shape.m == 8) bfs_lf_4_8 = median;
        if (shape.n == 2 && shape.m == 1) bfs_lf_2_1 = median;
      }
      char band[64];
      std::snprintf(band, sizeof(band), "%.3f-%.3f", r.lf_samples.front(),
                    r.lf_samples.back());
      table.AddRow({TablePrinter::Fmt(std::int64_t{shape.n}),
                    TablePrinter::Fmt(std::int64_t{shape.m}), policy.name,
                    TablePrinter::Fmt(median, 3), band,
                    TablePrinter::Fmt(r.minserts_per_sec, 2),
                    TablePrinter::Fmt(r.failed_inserts, 1),
                    TablePrinter::Fmt(r.rebuilds, 1),
                    TablePrinter::Fmt(r.stash_used, 1)});
      session.AddRow(
          std::string("insert/") + policy.name,
          {{"ways", std::to_string(shape.n)},
           {"slots", std::to_string(shape.m)},
           {"policy", policy.name}},
          {{"max_load_factor", ReportSession::Stat(median)},
           {"minserts_per_sec", ReportSession::Stat(r.minserts_per_sec)},
           {"failed_inserts", ReportSession::Stat(r.failed_inserts)},
           {"rebuilds", ReportSession::Stat(r.rebuilds)},
           {"stash_entries", ReportSession::Stat(r.stash_used)}});
    }
  }
  Emit(table, opt);

  const int report_rc = session.Finish();
  if (!check) return report_rc;

  // Regression gate. (4,8) BCHT must fill essentially full under BFS; (2,1)
  // non-bucketized cuckoo sits at the ~0.5 theoretical threshold — values
  // far outside that band mean the engine (or the measurement) regressed.
  int rc = report_rc;
  if (bfs_lf_4_8 < 0.95) {
    std::fprintf(stderr,
                 "CHECK FAILED: BFS (4,8) max LF %.3f < 0.95\n", bfs_lf_4_8);
    rc = 1;
  }
  if (bfs_lf_2_1 < 0.40 || bfs_lf_2_1 > 0.65) {
    std::fprintf(stderr,
                 "CHECK FAILED: BFS (2,1) max LF %.3f outside [0.40, 0.65]\n",
                 bfs_lf_2_1);
    rc = 1;
  }
  if (rc == 0 && !opt.csv) {
    std::printf("\ncheck: BFS (4,8) LF %.3f >= 0.95, (2,1) LF %.3f in "
                "[0.40, 0.65] — OK\n",
                bfs_lf_4_8, bfs_lf_2_1);
  }
  return rc;
}
