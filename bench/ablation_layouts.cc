// Design-choice ablations beyond the paper's figures (DESIGN.md section 5):
//  A. interleaved vs split bucket layout for the same (2,4) k32/v32 table
//  B. optimistic (one bucket per probe, 128-bit) vs pessimistic (both
//     buckets per probe, 256-bit) horizontal probing on (2,2)
//  C. hybrid vertical slot-count sweep: m in {1,2,4} at constant capacity
//  D. hit-rate sensitivity: 50% vs 90% vs 100% selectivity on (2,4)
#include "bench_common.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Ablations: layout, probe policy, hybrid slots, hit rate",
              opt);
  ReportSession session(opt, "Ablations: layout, probe, slots, hit rate");

  TablePrinter table({"ablation", "config", "kernel", "Mlookups/s/core",
                      "speedup vs scalar"});

  auto run = [&](const std::string& section, const std::string& label,
                 CaseSpec spec, const ValidationOptions& options) {
    const CaseResult result = RunCaseAuto(spec, options);
    session.AddCase(result,
                    {{"ablation", section}, {"config", label}});
    for (const MeasuredKernel& k : result.kernels) {
      table.AddRow({section, label, k.name,
                    TablePrinter::Fmt(k.mlps_per_core, 1),
                    k.approach == Approach::kScalar
                        ? "1.00"
                        : TablePrinter::Fmt(k.speedup, 2)});
    }
  };

  // A: interleaved vs split.
  {
    CaseSpec spec = PaperCaseDefaults(opt);
    spec.table_bytes = 1 << 20;
    spec.layout = Layout(2, 4);
    run("A: bucket layout", "(2,4) interleaved", spec, {});
    spec.layout = Layout(2, 4, 32, 32, BucketLayout::kSplit);
    run("A: bucket layout", "(2,4) split", spec, {});
  }

  // B: optimistic vs pessimistic probing on (2,2) — the 128-bit kernel
  // probes one bucket per instruction and can early-exit; the 256-bit one
  // loads both candidate buckets up front.
  {
    CaseSpec spec = PaperCaseDefaults(opt);
    spec.table_bytes = 1 << 20;
    spec.layout = Layout(2, 2);
    ValidationOptions options;
    options.strict = false;  // keep both widths despite equal parallelism
    options.widths = {128, 256};
    run("B: probe policy", "(2,2) 128b optimistic vs 256b pessimistic",
        spec, options);
  }

  // C: hybrid vertical slots sweep at constant capacity.
  for (const unsigned m : {1u, 2u, 4u}) {
    CaseSpec spec = PaperCaseDefaults(opt);
    spec.table_bytes = 1 << 20;
    spec.layout = Layout(2, m);
    ValidationOptions options;
    options.include_hybrid = true;
    options.widths = {512};
    if (m == 1) {
      run("C: hybrid slots", "m=1 (pure vertical)", spec, options);
    } else {
      // Only the vertical-over-BCHT kernels are of interest here.
      auto kernels = KernelRegistry::Get().Find(
          KernelQuery{spec.layout, Approach::kVerticalBcht, 512});
      const CaseResult result = RunCase(spec, kernels);
      session.AddCase(result, {{"ablation", "C: hybrid slots"},
                               {"config", "m=" + std::to_string(m)}});
      for (const MeasuredKernel& k : result.kernels) {
        table.AddRow({"C: hybrid slots", "m=" + std::to_string(m), k.name,
                      TablePrinter::Fmt(k.mlps_per_core, 1),
                      k.approach == Approach::kScalar
                          ? "1.00"
                          : TablePrinter::Fmt(k.speedup, 2)});
      }
    }
  }

  // D: hit-rate sensitivity (misses probe all N buckets; hits early-exit).
  for (const double hit_rate : {0.5, 0.9, 1.0}) {
    CaseSpec spec = PaperCaseDefaults(opt);
    spec.table_bytes = 1 << 20;
    spec.layout = Layout(2, 4);
    spec.hit_rate = hit_rate;
    ValidationOptions options;
    options.widths = {256};
    run("D: hit rate", ("hit " + std::to_string(hit_rate)).substr(0, 8),
        spec, options);
  }

  Emit(table, opt);
  return session.Finish();
}
