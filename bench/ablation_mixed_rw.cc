// Mixed read/write workload studies (the paper's Section VII future work).
//
// Part 1 — writer-interference study: a dedicated writer thread
// continuously overwrites resident values in-place while reader threads
// run the batched lookup kernels; reported is the reader throughput with
// the writer off vs on. The question the paper poses: do SIMD lookups keep
// their advantage when the table is being mutated under them (cache-line
// ping-pong on hot buckets)?
//
// Part 2 — YCSB scenario matrix: the six core YCSB workloads (A-F) run
// single-threaded against three table designs — (2,4) BCHT with the
// horizontal kernel, (3,1) cuckoo with the vertical kernel, and the Swiss
// control-byte table — plus a 4-shard BCHT variant. Reads go through the
// SIMD kernels (BatchGet), writes through the family-generic batched
// mutation engine (BatchInsert/BatchUpdate), so the matrix measures the
// blended throughput of the unified batched read/write path. Per-design
// insert-path counters (direct vs BFS-path vs stash placements, rebuilds;
// per-shard skew for the sharded variant) ride along in the RunReport.
#include <memory>

#include "bench_common.h"
#include "core/mixed_runner.h"
#include "core/ycsb.h"

using namespace simdht;
using namespace simdht::bench;

namespace {

struct Design {
  std::string label;
  YcsbTable::Options options;
};

std::vector<Design> YcsbDesigns(std::uint64_t capacity) {
  std::vector<Design> designs;
  {
    YcsbTable::Options o;
    o.ways = 2;
    o.slots = 4;
    o.capacity = capacity;
    designs.push_back({"BCHT-hor(2,4)", o});
  }
  {
    YcsbTable::Options o;
    o.ways = 3;
    o.slots = 1;
    o.capacity = capacity;
    designs.push_back({"Cuckoo-ver(3,1)", o});
  }
  {
    YcsbTable::Options o;
    o.family = TableFamily::kSwiss;
    o.capacity = capacity;
    designs.push_back({"Swiss", o});
  }
  {
    YcsbTable::Options o;
    o.ways = 2;
    o.slots = 4;
    o.capacity = capacity;
    o.shards = 4;
    designs.push_back({"BCHT-hor(2,4)x4", o});
  }
  return designs;
}

// Emits the design's insert-path counters into `metrics`, and per-shard
// rows into the session for sharded designs (the write-path twin of the
// serving metrics' per-shard probe counters).
void AppendInsertStats(
    const YcsbTable& table, const Design& design, const StringPairs& config,
    std::vector<std::pair<std::string, MetricStat>>* metrics,
    ReportSession* session) {
  const auto stat = [](std::uint64_t v) {
    return ReportSession::Stat(static_cast<double>(v));
  };
  if (table.family() == TableFamily::kSwiss) {
    const SwissInsertStats& s = table.swiss_table().insert_stats();
    metrics->emplace_back("inserts", stat(s.inserts));
    metrics->emplace_back("updates", stat(s.updates));
    metrics->emplace_back("tombstone_reuses", stat(s.tombstone_reuses));
    metrics->emplace_back("failed_inserts", stat(s.failed_inserts));
    return;
  }
  const InsertStats s = table.num_shards() > 1
                            ? table.sharded().insert_stats()
                            : table.table().insert_stats();
  metrics->emplace_back("direct_inserts", stat(s.direct_inserts));
  metrics->emplace_back("path_inserts", stat(s.path_inserts));
  metrics->emplace_back("stash_inserts", stat(s.stash_inserts));
  metrics->emplace_back("rebuilds", stat(s.rebuilds));
  metrics->emplace_back("failed_inserts", stat(s.failed_inserts));
  if (table.num_shards() > 1) {
    const auto per_shard = table.sharded().ShardInsertStats();
    for (std::size_t i = 0; i < per_shard.size(); ++i) {
      StringPairs shard_config = config;
      shard_config.emplace_back("shard", std::to_string(i));
      session->AddRow(
          design.label, shard_config,
          {{"direct_inserts", stat(per_shard[i].direct_inserts)},
           {"path_inserts", stat(per_shard[i].path_inserts)},
           {"stash_inserts", stat(per_shard[i].stash_inserts)},
           {"failed_inserts", stat(per_shard[i].failed_inserts)}});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Mixed read/write workloads (Section VII extension)", opt);
  ReportSession session(opt, "Mixed read/write workloads");

  // --- Part 1: reader throughput under a concurrent writer. ---
  TablePrinter mixed_table(
      {"layout", "pattern", "kernel", "read-only Mlps/core",
       "with writer Mlps/core", "writer Mupd/s", "reader slowdown"});

  for (const AccessPattern pattern :
       {AccessPattern::kUniform, AccessPattern::kZipfian}) {
    for (const LayoutSpec& layout : {Layout(2, 4), Layout(3, 1)}) {
      CaseSpec spec = PaperCaseDefaults(opt);
      spec.layout = layout;
      spec.table_bytes = 1 << 20;
      spec.pattern = pattern;
      spec.run.repeats = opt.quick ? 2 : 5;

      std::vector<const KernelInfo*> kernels;
      for (const DesignChoice& c : ValidationEngine::Enumerate(layout)) {
        kernels.push_back(c.kernel);
      }
      const std::vector<MixedResult> mixed = RunMixedCase(spec, kernels);
      session.AddMixed(mixed, {{"layout", layout.ToString()},
                               {"pattern", AccessPatternName(pattern)}});
      for (const MixedResult& r : mixed) {
        mixed_table.AddRow(
            {layout.ToString(), AccessPatternName(pattern), r.kernel,
             TablePrinter::Fmt(r.read_only_mlps, 1),
             TablePrinter::Fmt(r.with_writer_mlps, 1),
             TablePrinter::Fmt(r.writer_mups, 1),
             TablePrinter::Fmt(r.degradation * 100.0, 1) + "%"});
      }
    }
  }
  Emit(mixed_table, opt);

  // --- Part 2: the YCSB A-F scenario matrix. ---
  // Tables start half full so D/E's inserts have headroom; every design
  // preloads the identical id set, so hit rates are comparable.
  const std::uint64_t initial_keys = opt.quick ? (1u << 15) : (1u << 18);
  const std::uint64_t capacity = initial_keys * 2;

  YcsbConfig config;
  config.initial_keys = initial_keys;
  config.ops = opt.quick ? (1u << 17) : (1u << 20);
  config.seed = opt.seed;

  TablePrinter ycsb_table({"design", "workload", "Mops/s", "read Mops/s",
                           "write Mops/s", "hit rate", "load factor",
                           "kernel"});
  for (const Design& design : YcsbDesigns(capacity)) {
    for (const YcsbWorkload w : kAllYcsbWorkloads) {
      config.workload = w;
      YcsbTable table(design.options);
      YcsbPreload(&table, config.initial_keys);
      const YcsbResult r = RunYcsb(&table, config);

      ycsb_table.AddRow(
          {design.label, r.workload, TablePrinter::Fmt(r.mops, 2),
           TablePrinter::Fmt(r.read_mops, 2),
           TablePrinter::Fmt(r.write_mops, 2),
           TablePrinter::Fmt(r.hit_rate * 100.0, 1) + "%",
           TablePrinter::Fmt(r.load_factor, 3), table.kernel_name()});

      const StringPairs config_pairs = {
          {"workload", r.workload},
          {"initial_keys", std::to_string(config.initial_keys)},
          {"ops", std::to_string(config.ops)}};
      std::vector<std::pair<std::string, MetricStat>> metrics = {
          {"mops", ReportSession::Stat(r.mops)},
          {"read_mops", ReportSession::Stat(r.read_mops)},
          {"write_mops", ReportSession::Stat(r.write_mops)},
          {"hit_rate", ReportSession::Stat(r.hit_rate)},
          {"load_factor", ReportSession::Stat(r.load_factor)},
          {"reads", ReportSession::Stat(
                        static_cast<double>(r.counts.reads))},
          {"updates", ReportSession::Stat(
                          static_cast<double>(r.counts.updates))},
          {"op_inserts", ReportSession::Stat(
                             static_cast<double>(r.counts.inserts))},
          {"scans", ReportSession::Stat(
                        static_cast<double>(r.counts.scans))},
          {"rmws", ReportSession::Stat(
                       static_cast<double>(r.counts.rmws))}};
      AppendInsertStats(table, design, config_pairs, &metrics, &session);
      session.AddRow(design.label, config_pairs, std::move(metrics));
    }
  }
  Emit(ycsb_table, opt);
  return session.Finish();
}
