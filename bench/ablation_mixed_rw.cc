// Mixed read/update workload study (the paper's Section VII future work).
//
// A dedicated writer thread continuously overwrites resident values
// in-place while reader threads run the batched lookup kernels; reported is
// the reader throughput with the writer off vs on. The question the paper
// poses: do SIMD lookups keep their advantage when the table is being
// mutated under them (cache-line ping-pong on hot buckets)?
#include "bench_common.h"
#include "core/mixed_runner.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Mixed read/update workloads (Section VII extension)", opt);
  ReportSession session(opt, "Mixed read/update workloads");

  TablePrinter table({"layout", "pattern", "kernel", "read-only Mlps/core",
                      "with writer Mlps/core", "writer Mupd/s",
                      "reader slowdown"});

  for (const AccessPattern pattern :
       {AccessPattern::kUniform, AccessPattern::kZipfian}) {
    for (const LayoutSpec& layout : {Layout(2, 4), Layout(3, 1)}) {
      CaseSpec spec = PaperCaseDefaults(opt);
      spec.layout = layout;
      spec.table_bytes = 1 << 20;
      spec.pattern = pattern;
      spec.run.repeats = opt.quick ? 2 : 5;

      std::vector<const KernelInfo*> kernels;
      for (const DesignChoice& c : ValidationEngine::Enumerate(layout)) {
        kernels.push_back(c.kernel);
      }
      const std::vector<MixedResult> mixed = RunMixedCase(spec, kernels);
      session.AddMixed(mixed, {{"layout", layout.ToString()},
                               {"pattern", AccessPatternName(pattern)}});
      for (const MixedResult& r : mixed) {
        table.AddRow({layout.ToString(), AccessPatternName(pattern),
                      r.kernel, TablePrinter::Fmt(r.read_only_mlps, 1),
                      TablePrinter::Fmt(r.with_writer_mlps, 1),
                      TablePrinter::Fmt(r.writer_mups, 1),
                      TablePrinter::Fmt(r.degradation * 100.0, 1) + "%"});
      }
    }
  }
  Emit(table, opt);
  return session.Finish();
}
