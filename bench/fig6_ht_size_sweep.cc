// Fig 6 / Case Study 1(b): lookup performance vs hash-table size.
//
// Paper shape: SIMD benefits shrink as the table outgrows the caches —
// ~3.5x average speedup at 256 KB (cache-resident) down to ~1.5x at 64 MB
// (memory-bound), for both approaches, uniform access, LF/hit = 90%.
#include "bench_common.h"

using namespace simdht;
using namespace simdht::bench;

int main(int argc, char** argv) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  PrintHeader("Fig 6 / Case Study 1(b): HT size sweep (uniform)", opt);
  ReportSession session(opt, "Fig 6: HT size sweep (uniform)");

  std::vector<std::uint64_t> sizes = {256 << 10, 1 << 20, 4 << 20,
                                      16 << 20, 64 << 20};
  if (opt.quick) sizes = {256 << 10, 1 << 20, 4 << 20, 16 << 20};

  // The paper's two representative cuckoo designs (best horizontal, best
  // vertical) plus the Swiss control-byte family as a third design point.
  const LayoutSpec designs[] = {Layout(2, 4), Layout(3, 1),
                                LayoutSpec::Swiss(32, 32)};

  std::vector<std::string> headers = {"HT size", "layout", "kernel",
                                      "Mlookups/s/core", "speedup vs scalar"};
  AppendPerfColumns(opt, &headers);
  TablePrinter table(std::move(headers));
  for (const std::uint64_t bytes : sizes) {
    for (const LayoutSpec& layout : designs) {
      CaseSpec spec = PaperCaseDefaults(opt);
      spec.layout = layout;
      spec.table_bytes = bytes;
      // Keep the probe volume constant-ish in time across sizes.
      if (bytes >= (16u << 20) && opt.quick) {
        spec.run.queries_per_thread /= 2;
      }
      const CaseResult result = RunCaseAuto(spec);
      session.AddCase(result, {{"ht_size", std::to_string(bytes)},
                               {"layout", layout.ToString()}});
      for (const MeasuredKernel& k : result.kernels) {
        std::vector<std::string> row = {
            HumanBytes(static_cast<double>(bytes)), layout.ToString(), k.name,
            TablePrinter::Fmt(k.mlps_per_core, 1),
            k.approach == Approach::kScalar ? "1.00"
                                            : TablePrinter::Fmt(k.speedup, 2)};
        AppendPerfCells(opt, k, &row);
        table.AddRow(std::move(row));
      }
    }
  }
  Emit(table, opt);
  PrintPerfFooter(opt);
  return session.Finish();
}
