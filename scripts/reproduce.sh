#!/usr/bin/env bash
# End-to-end reproduction driver: configure, build, test, run every
# figure/table benchmark, and leave the raw outputs at the repo root.
#
# Usage:  scripts/reproduce.sh [--full]
#   --full   paper-scale sweeps (hours on a laptop); default is quick mode.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE_FLAG=""
if [[ "${1:-}" == "--full" ]]; then
  MODE_FLAG="--full"
fi

echo "== configure =="
cmake -B build -G Ninja

echo "== build =="
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

echo "== benchmarks =="
{
  for b in build/bench/*; do
    if [[ -x "$b" && -f "$b" ]]; then
      echo "### $(basename "$b")"
      "$b" ${MODE_FLAG}
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "== examples (smoke) =="
./build/examples/quickstart
./build/examples/packet_forwarding --flows=50000 --bursts=2000
./build/examples/db_hash_join --customers=20000 --orders=500000
./build/examples/multiget_kvs --keys=5000 --requests=100

echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
