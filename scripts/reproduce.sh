#!/usr/bin/env bash
# End-to-end reproduction driver: configure, build, test, run every
# figure/table benchmark, and leave the raw outputs at the repo root.
#
# Usage:  scripts/reproduce.sh [--full]
#   --full   paper-scale sweeps (hours on a laptop); default is quick mode.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE_FLAG=""
if [[ "${1:-}" == "--full" ]]; then
  MODE_FLAG="--full"
fi

echo "== configure =="
cmake -B build -G Ninja

echo "== build =="
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

echo "== benchmarks =="
# Each binary also leaves a structured RunReport under reports/ so two
# reproduction runs are diffable with tools/simdht_compare (see
# docs/observability.md).
mkdir -p reports
{
  for b in build/bench/*; do
    if [[ -x "$b" && -f "$b" ]]; then
      name="$(basename "$b")"
      echo "### ${name}"
      "$b" ${MODE_FLAG} --json="reports/${name}.json"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "== report sanity (self-compare must be clean) =="
./build/tools/simdht_compare reports/fig6_ht_size_sweep.json \
  reports/fig6_ht_size_sweep.json > /dev/null
echo "reports/: $(ls reports | wc -l) run reports (compare two runs with" \
  "build/tools/simdht_compare A.json B.json)"

echo "== examples (smoke) =="
./build/examples/quickstart
./build/examples/packet_forwarding --flows=50000 --bursts=2000
./build/examples/db_hash_join --customers=20000 --orders=500000
./build/examples/multiget_kvs --keys=5000 --requests=100

echo "done: see test_output.txt, bench_output.txt, reports/, EXPERIMENTS.md"
