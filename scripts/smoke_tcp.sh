#!/usr/bin/env bash
# Loopback smoke test for the real-TCP serving subsystem.
#
# Starts two `simdht serve` processes on ephemeral ports, drives them with
# the open-loop `simdht loadgen` at a fixed rate, and asserts:
#   * the loadgen's RunReport is well-formed (schema v1, a tcp-loadgen row
#     with latency percentiles, one tcp-server row per server),
#   * no per-key errors (both servers answered for their shards),
#   * the epoll server coalesced frames from more than one connection into
#     a single backend probe batch (batch_connections.max > 1 on at least
#     one server) — the tentpole behaviour of the subsystem,
#   * simdht_compare accepts the report (self-compare exits 0).
#
#   scripts/smoke_tcp.sh [build-dir]    # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SIMDHT="${BUILD}/tools/simdht"
COMPARE="${BUILD}/tools/simdht_compare"
REPORT_DIR="${SMOKE_REPORT_DIR:-reports}"
mkdir -p "${REPORT_DIR}"

if [ ! -x "${SIMDHT}" ]; then
  echo "smoke_tcp: ${SIMDHT} not built" >&2
  exit 1
fi

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

# Ephemeral ports: each server prints "listening on HOST:PORT" once bound;
# scrape the port from its log instead of racing for a fixed number.
start_server() {
  local log="$1"
  "${SIMDHT}" serve --port=0 --backend=memc3 --entries=262144 --mem=128m \
    >"${log}" 2>&1 &
  pids+=($!)
}

scrape_port() {
  local log="$1"
  for _ in $(seq 1 100); do
    if grep -q 'listening on' "${log}" 2>/dev/null; then
      sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "${log}" | head -n1
      return 0
    fi
    sleep 0.1
  done
  echo "smoke_tcp: server did not come up (${log}):" >&2
  cat "${log}" >&2
  return 1
}

start_server "${REPORT_DIR}/smoke_serve0.log"
start_server "${REPORT_DIR}/smoke_serve1.log"
port0=$(scrape_port "${REPORT_DIR}/smoke_serve0.log")
port1=$(scrape_port "${REPORT_DIR}/smoke_serve1.log")
echo "smoke_tcp: servers on ports ${port0} and ${port1}"

# Open loop at a rate several clients share: uniform arrivals from a common
# epoch make concurrent frames the norm, so cross-connection batching must
# show up in the occupancy histogram.
"${SIMDHT}" loadgen \
  --servers="127.0.0.1:${port0},127.0.0.1:${port1}" \
  --clients=4 --arrival=uniform --qps=20000 --seconds=1 \
  --num-keys=20000 --mget=16 --hit-rate=1.0 \
  --stop-servers --json="${REPORT_DIR}/tcp_smoke.json"

python3 - "${REPORT_DIR}/tcp_smoke.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['schema_version'] == 1, r.get('schema_version')
rows = {row['kernel']: row for row in r['results'] if row['kernel'] != 'tcp-server'}
servers = [row for row in r['results'] if row['kernel'] == 'tcp-server']
lg = rows['tcp-loadgen']
m = {name: stat['mean'] for name, stat in lg['metrics'].items()}
assert m['requests'] > 0, m
assert m['key_errors'] == 0, f"per-key errors: {m['key_errors']}"
for p in ('mget_p50_us', 'mget_p99_us', 'mget_p999_us'):
    assert m[p] > 0, (p, m)
assert m['mget_p50_us'] <= m['mget_p99_us'] <= m['mget_p999_us'], m
assert len(servers) == 2, f"expected 2 tcp-server rows, got {len(servers)}"
occ = []
for row in servers:
    sm = {name: stat['mean'] for name, stat in row['metrics'].items()}
    assert sm.get('batches', 0) > 0, row
    occ.append(sm.get('batch_connections.max', 0))
assert max(occ) > 1, \
    f"no cross-connection batching observed (occupancy max {occ})"
print(f"smoke_tcp: report OK — p99 {m['mget_p99_us']:.1f} us, "
      f"batch occupancy max {max(occ):.0f}")
EOF

"${COMPARE}" "${REPORT_DIR}/tcp_smoke.json" "${REPORT_DIR}/tcp_smoke.json"
echo "smoke_tcp: PASS"
