#!/usr/bin/env bash
# Loopback smoke test for the real-TCP serving subsystem.
#
# Starts two `simdht serve` processes on ephemeral ports (with live
# metrics endpoints and server-side tracing), drives them with the
# open-loop `simdht loadgen` (trace-sampling enabled), and asserts:
#   * the loadgen's RunReport is well-formed (schema v1, a tcp-loadgen row
#     with latency percentiles, one tcp-server row per server),
#   * no per-key errors (both servers answered for their shards),
#   * the epoll server coalesced frames from more than one connection into
#     a single backend probe batch (batch_connections.max > 1 on at least
#     one server) — the tentpole behaviour of the subsystem,
#   * a mid-run Prometheus scrape of --metrics-port parses, shows a
#     nonzero simdht_kvs_requests_total, and its windowed index-probe p99
#     lands within a generous band of the report's post-run p99 (same
#     units — ns — same order of magnitude),
#   * simdht_tracemerge aligns the client trace with both server traces
#     into one valid Chrome trace (client + server spans on shared time),
#   * simdht_compare accepts the report (self-compare exits 0).
#
#   scripts/smoke_tcp.sh [build-dir]    # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SIMDHT="${BUILD}/tools/simdht"
COMPARE="${BUILD}/tools/simdht_compare"
TRACEMERGE="${BUILD}/tools/simdht_tracemerge"
REPORT_DIR="${SMOKE_REPORT_DIR:-reports}"
mkdir -p "${REPORT_DIR}"

if [ ! -x "${SIMDHT}" ]; then
  echo "smoke_tcp: ${SIMDHT} not built" >&2
  exit 1
fi

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

# Ephemeral ports: each server prints "listening on HOST:PORT" once bound;
# scrape the port from its log instead of racing for a fixed number. Each
# server also opens an ephemeral Prometheus HTTP port (scraped mid-run)
# and records sampled request spans for the post-run trace merge.
start_server() {
  local log="$1" trace="$2"
  "${SIMDHT}" serve --port=0 --backend=memc3 --entries=262144 --mem=128m \
    --metrics-port=0 --trace="${trace}" \
    >"${log}" 2>&1 &
  pids+=($!)
  last_server_pid=$!
}

scrape_line_port() {
  local log="$1" needle="$2"
  for _ in $(seq 1 100); do
    if grep -q "${needle}" "${log}" 2>/dev/null; then
      sed -n "s/.*${needle} [^:]*:\([0-9]*\).*/\1/p" "${log}" | head -n1
      return 0
    fi
    sleep 0.1
  done
  echo "smoke_tcp: no '${needle}' line in ${log}:" >&2
  cat "${log}" >&2
  return 1
}

start_server "${REPORT_DIR}/smoke_serve0.log" \
  "${REPORT_DIR}/smoke_server0_trace.json"
server0_pid=${last_server_pid}
start_server "${REPORT_DIR}/smoke_serve1.log" \
  "${REPORT_DIR}/smoke_server1_trace.json"
server1_pid=${last_server_pid}
port0=$(scrape_line_port "${REPORT_DIR}/smoke_serve0.log" 'listening on')
port1=$(scrape_line_port "${REPORT_DIR}/smoke_serve1.log" 'listening on')
mport0=$(scrape_line_port "${REPORT_DIR}/smoke_serve0.log" 'metrics on')
echo "smoke_tcp: servers on ports ${port0} and ${port1}" \
  "(metrics on ${mport0})"

# Open loop at a rate several clients share: uniform arrivals from a common
# epoch make concurrent frames the norm, so cross-connection batching must
# show up in the occupancy histogram. Runs in the background so the
# metrics endpoint can be scraped MID-RUN; --trace-out samples 1-in-16
# requests as traced Multi-Gets for the merge step.
"${SIMDHT}" loadgen \
  --servers="127.0.0.1:${port0},127.0.0.1:${port1}" \
  --clients=4 --arrival=uniform --qps=20000 --seconds=1 \
  --num-keys=20000 --mget=16 --hit-rate=1.0 \
  --trace-out="${REPORT_DIR}/smoke_client_trace.json" \
  --stop-servers --json="${REPORT_DIR}/tcp_smoke.json" &
loadgen_pid=$!
pids+=(${loadgen_pid})

# Mid-run live scrape: poll until the serving phase is underway (nonzero
# request counter) so the windowed numbers describe real traffic, not the
# preload. The scrape body is kept for the band check after the report
# lands.
python3 - "${mport0}" "${REPORT_DIR}/smoke_scrape.txt" <<'EOF'
import sys, time, urllib.request
port, out_path = sys.argv[1], sys.argv[2]
url = f"http://127.0.0.1:{port}/metrics"
body = ""
requests_total = 0.0
for _ in range(100):
    try:
        with urllib.request.urlopen(url, timeout=2) as r:
            ctype = r.headers.get("Content-Type", "")
            assert "text/plain" in ctype and "version=0.0.4" in ctype, ctype
            body = r.read().decode()
    except OSError:
        time.sleep(0.05)
        continue
    requests_total = 0.0
    for line in body.splitlines():
        if line.startswith("simdht_kvs_requests_total "):
            requests_total = float(line.split()[-1])
    if requests_total > 0:
        break
    time.sleep(0.05)
else:
    sys.exit("smoke_tcp: metrics endpoint never showed served requests")
# Exposition format sanity: HELP/TYPE headers and the family set.
assert "# TYPE simdht_kvs_requests_total counter" in body, body[:400]
assert "# HELP" in body
for family in ("simdht_window_requests_per_s", "simdht_kvs_phase_ns",
               "simdht_shard_hits_total"):
    assert family in body, f"missing {family}"
open(out_path, "w").write(body)
print(f"smoke_tcp: live scrape OK — {requests_total:.0f} requests served")
EOF

wait "${loadgen_pid}"

# --stop-servers sent SHUTDOWN; wait for both serve processes to flush
# their trace files on exit.
for pid in "${server0_pid}" "${server1_pid}"; do
  for _ in $(seq 1 100); do
    kill -0 "${pid}" 2>/dev/null || break
    sleep 0.1
  done
done
wait "${server0_pid}" "${server1_pid}" 2>/dev/null || true

python3 - "${REPORT_DIR}/tcp_smoke.json" "${REPORT_DIR}/smoke_scrape.txt" \
  <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r['schema_version'] == 1, r.get('schema_version')
rows = {row['kernel']: row for row in r['results'] if row['kernel'] != 'tcp-server'}
servers = [row for row in r['results'] if row['kernel'] == 'tcp-server']
lg = rows['tcp-loadgen']
m = {name: stat['mean'] for name, stat in lg['metrics'].items()}
assert m['requests'] > 0, m
assert m['key_errors'] == 0, f"per-key errors: {m['key_errors']}"
for p in ('mget_p50_us', 'mget_p99_us', 'mget_p999_us'):
    assert m[p] > 0, (p, m)
assert m['mget_p50_us'] <= m['mget_p99_us'] <= m['mget_p999_us'], m
assert len(servers) == 2, f"expected 2 tcp-server rows, got {len(servers)}"
occ = []
probe_p99 = []
for row in servers:
    sm = {name: stat['mean'] for name, stat in row['metrics'].items()}
    assert sm.get('batches', 0) > 0, row
    occ.append(sm.get('batch_connections.max', 0))
    assert sm.get('units.phase_ns') == 1, 'phase units not declared as ns'
    probe_p99.append(sm['index_probe_ns.p99'])
assert max(occ) > 1, \
    f"no cross-connection batching observed (occupancy max {occ})"

# The mid-run windowed p99 must sit in the band the report claims: the
# whole run fits inside the rolling window, so windowed and lifetime p99
# describe the same traffic in the same unit (ns). A cycles-vs-ns mixup
# or a broken window merge lands far outside this band.
win_p99 = None
needle = 'simdht_window_phase_ns{phase="index_probe",quantile="0.99"}'
for line in open(sys.argv[2]):
    if line.startswith(needle):
        win_p99 = float(line.split()[-1])
assert win_p99 is not None, 'windowed index-probe p99 missing from scrape'
assert win_p99 > 0, win_p99
band = (min(probe_p99) / 20.0, max(probe_p99) * 20.0)
assert band[0] <= win_p99 <= band[1], \
    f"windowed p99 {win_p99} outside report band {band}"
print(f"smoke_tcp: report OK — p99 {m['mget_p99_us']:.1f} us, "
      f"batch occupancy max {max(occ):.0f}, "
      f"windowed probe p99 {win_p99:.0f} ns in band "
      f"[{band[0]:.0f}, {band[1]:.0f}]")
EOF

# Merge the client trace with both server traces onto one clock and check
# the merged document is a loadable Chrome trace with spans from every
# process: the cross-wire tracing acceptance path.
"${TRACEMERGE}" --out="${REPORT_DIR}/tcp_smoke_trace_merged.json" \
  "${REPORT_DIR}/smoke_client_trace.json" \
  "0=${REPORT_DIR}/smoke_server0_trace.json" \
  "1=${REPORT_DIR}/smoke_server1_trace.json"

python3 - "${REPORT_DIR}/tcp_smoke_trace_merged.json" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
events = t['traceEvents']
assert events, 'empty merged trace'
by_pid = {}
client_names = set()
server_names = set()
traced = 0
for e in events:
    assert 'ph' in e and 'pid' in e, e
    by_pid[e['pid']] = by_pid.get(e['pid'], 0) + 1
    name = e.get('name', '')
    if e['pid'] == 1:
        client_names.add(name.split('.')[0])
    elif e['pid'] in (2, 3):
        server_names.add(name)
    if name == 'request' and 'trace_id' in e.get('args', {}):
        traced += 1
assert set(by_pid) >= {1, 2, 3}, f"missing process: {sorted(by_pid)}"
# Client side: request + per-server send/wait spans + sync instants.
assert {'request', 'send_wait', 'clock_sync'} <= client_names, client_names
# Server side: every per-request phase span made it across the merge.
assert {'parse', 'index_probe', 'value_copy',
        'transport'} <= server_names, server_names
assert traced > 0, 'no sampled request spans carry a trace_id'
print(f"smoke_tcp: merged trace OK — {len(events)} events, "
      f"{traced} traced request spans, "
      f"per-process {dict(sorted(by_pid.items()))}")
EOF

"${COMPARE}" "${REPORT_DIR}/tcp_smoke.json" "${REPORT_DIR}/tcp_smoke.json"
echo "smoke_tcp: PASS"
