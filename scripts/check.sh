#!/usr/bin/env bash
# Full local check: build + test the default preset, then ASan+UBSan,
# then the concurrency suites under ThreadSanitizer.
#
#   scripts/check.sh            # all three presets
#   scripts/check.sh default    # just the release build
#   scripts/check.sh asan       # just the ASan+UBSan build
#   scripts/check.sh tsan       # just the TSan build (runs the concurrent-
#                               # table / sharded-table / mixed-runner tests)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan tsan)
fi

jobs=$(nproc 2>/dev/null || echo 4)
for preset in "${presets[@]}"; do
  echo "=== preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}"
  if [ "${preset}" = "default" ]; then
    # Insertion-engine regression gate: BFS must keep (4,8) BCHT at >= 0.95
    # max load factor and (2,1) cuckoo inside the theoretical band.
    echo "=== insertion-engine max-LF gate ==="
    ./build/bench/micro_insert_path --quick --check
    # Batched-write gate: BatchInsert must leave byte-identical state to
    # the scalar loop and beat it >= 1.5x on the 64 MiB cuckoo table.
    echo "=== batched-write engine gate ==="
    ./build/bench/micro_insert_path --engine=batch --full --check
    # Kernel parity gate: every SIMD kernel (cuckoo and Swiss families,
    # every supported ISA tier) must match its scalar twin probe-for-probe.
    echo "=== kernel parity gate ==="
    ./build/bench/micro_kernels --check
    # Real-TCP serving smoke: two serve processes on loopback, open-loop
    # loadgen, cross-connection batching visible in the RunReport, a
    # mid-run Prometheus scrape, and the client+server trace merge.
    echo "=== TCP serving smoke ==="
    scripts/smoke_tcp.sh build
  fi
done
echo "=== all checks passed ==="
