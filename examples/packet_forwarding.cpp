// Packet-forwarding flow table (the CuckooSwitch / DPDK scenario).
//
// Network switches resolve the output port for every incoming packet with a
// flow-table lookup; packets arrive in RX bursts (batches), the access
// pattern is near-uniform, and the table must sustain a high load factor —
// exactly the workload Table I's networking rows optimize for.
//
// This example builds a (2,8) BCHT flow table (DPDK's 8-slot shape), routes
// synthetic packet bursts through both the scalar and the best SIMD lookup,
// and reports packets/second.
//
//   $ ./packet_forwarding [--flows=200000] [--bursts=20000] [--burst=32]
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/validation.h"
#include "ht/cuckoo_table.h"
#include "ht/table_builder.h"

using namespace simdht;

namespace {

// 32-bit flow key derived from the 5-tuple (already-hashed, as a switch
// pipeline would after RSS).
std::uint32_t FlowKey(std::uint32_t src_ip, std::uint32_t dst_ip,
                      std::uint16_t src_port, std::uint16_t dst_port) {
  const std::uint64_t tuple =
      (static_cast<std::uint64_t>(src_ip ^ dst_ip) << 32) |
      (static_cast<std::uint32_t>(src_port) << 16) | dst_port;
  const auto k = static_cast<std::uint32_t>(Mix64(tuple));
  return k == 0 ? 1 : k;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto num_flows =
      static_cast<std::size_t>(flags.GetInt("flows", 200000));
  const auto num_bursts =
      static_cast<std::size_t>(flags.GetInt("bursts", 20000));
  const auto burst = static_cast<std::size_t>(flags.GetInt("burst", 32));

  // Flow table: (2,8) BCHT like DPDK's hash library; payload = output port.
  CuckooTable32 table(2, 8, num_flows / 8 + 1, BucketLayout::kInterleaved);

  // Install flows.
  Xoshiro256 rng(1);
  std::vector<std::uint32_t> flows;
  flows.reserve(num_flows);
  while (flows.size() < num_flows) {
    const std::uint32_t key =
        FlowKey(static_cast<std::uint32_t>(rng.Next()),
                static_cast<std::uint32_t>(rng.Next()),
                static_cast<std::uint16_t>(rng.Next()),
                static_cast<std::uint16_t>(rng.Next()));
    const auto port = static_cast<std::uint32_t>(rng.NextBounded(64)) + 1;
    if (!table.Insert(key, port)) break;
    flows.push_back(key);
  }
  std::printf("flow table: %s, %zu flows installed, load factor %.2f\n",
              table.spec().ToString().c_str(), flows.size(),
              table.load_factor());

  // Pre-generate packet bursts: 95% known flows, 5% unknown (-> slow path).
  std::vector<std::uint32_t> packets(num_bursts * burst);
  for (auto& p : packets) {
    if (rng.NextDouble() < 0.95) {
      p = flows[rng.NextBounded(flows.size())];
    } else {
      p = FlowKey(static_cast<std::uint32_t>(rng.Next()), 0xFFFFFFFF, 1, 1);
    }
  }

  // Candidate lookups: scalar twin + every viable SIMD design.
  std::vector<const KernelInfo*> kernels = {
      KernelRegistry::Get().Scalar(table.spec())};
  for (const DesignChoice& c : ValidationEngine::Enumerate(table.spec())) {
    kernels.push_back(c.kernel);
  }

  std::vector<std::uint32_t> ports(burst);
  std::vector<std::uint8_t> hit(burst);
  for (const KernelInfo* kernel : kernels) {
    std::uint64_t forwarded = 0, missed = 0;
    Timer timer;
    for (std::size_t b = 0; b < num_bursts; ++b) {
      const std::uint32_t* burst_keys = packets.data() + b * burst;
      const std::uint64_t hits = kernel->Lookup(
          table.view(),
          ProbeBatch::Of(burst_keys, ports.data(), hit.data(), burst));
      forwarded += hits;
      missed += burst - hits;
    }
    const double secs = timer.ElapsedSeconds();
    const double mpps =
        static_cast<double>(num_bursts * burst) / secs / 1e6;
    std::printf("%-28s %8.2f Mpps  (%lu forwarded, %lu to slow path)\n",
                kernel->name.c_str(), mpps,
                static_cast<unsigned long>(forwarded),
                static_cast<unsigned long>(missed));
  }
  return 0;
}
