// Quickstart: build a bucketized cuckoo hash table, pick the best SIMD
// lookup design for it with the validation engine, and run a batched
// lookup through the kernel registry.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "common/cpu_features.h"
#include "core/validation.h"
#include "ht/cuckoo_table.h"
#include "ht/table_builder.h"
#include "simd/kernel.h"

using namespace simdht;

int main() {
  std::printf("SimdHT-Bench quickstart\nCPU: %s\n\n",
              GetCpuFeatures().ToString().c_str());

  // 1. A (2,4) bucketized cuckoo table: 2 hash functions, 4 slots/bucket,
  //    32-bit keys and payloads — the paper's best-LF horizontal design.
  CuckooTable32 table(/*ways=*/2, /*slots=*/4, /*num_buckets=*/1 << 14,
                      BucketLayout::kInterleaved);
  std::printf("table: %s, capacity %lu entries (%lu KiB)\n",
              table.spec().ToString().c_str(),
              static_cast<unsigned long>(table.capacity()),
              static_cast<unsigned long>(table.table_bytes() >> 10));

  // 2. Insert some entries (key 0 is reserved as the empty sentinel).
  for (std::uint32_t k = 1; k <= 50000; ++k) {
    if (!table.Insert(k, k * 7)) {
      std::printf("table full at key %u (load factor %.2f)\n", k,
                  table.load_factor());
      break;
    }
  }
  std::printf("inserted %lu entries, load factor %.2f\n\n",
              static_cast<unsigned long>(table.size()),
              table.load_factor());

  // 3. Ask the validation engine which SIMD designs fit this layout
  //    (reproduces a line of the paper's Listing 1).
  const auto choices = ValidationEngine::Enumerate(table.spec());
  std::printf("viable SIMD designs for this layout on this CPU:\n");
  for (const DesignChoice& choice : choices) {
    std::printf("  %s  (kernel: %s)\n", choice.Describe().c_str(),
                choice.kernel->name.c_str());
  }

  // 4. Batched lookup through the best kernel (vs. the scalar twin).
  const KernelInfo* kernel =
      choices.empty() ? KernelRegistry::Get().Scalar(table.spec())
                      : choices.back().kernel;
  std::vector<std::uint32_t> keys = {1, 42, 777, 50001, 123456, 33333};
  std::vector<std::uint32_t> vals(keys.size());
  std::vector<std::uint8_t> found(keys.size());
  const std::uint64_t hits = kernel->Lookup(
      table.view(),
      ProbeBatch::Of(keys.data(), vals.data(), found.data(), keys.size()));

  std::printf("\nbatched lookup via %s: %lu/%zu found\n",
              kernel->name.c_str(), static_cast<unsigned long>(hits),
              keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (found[i]) {
      std::printf("  key %-7u -> %u\n", keys[i], vals[i]);
    } else {
      std::printf("  key %-7u -> NOT_FOUND\n", keys[i]);
    }
  }
  return 0;
}
