// Distributed Multi-Get over a sharded key-value store (Section VI).
//
// Two server shards (each a KvServer over a SIMD-aware backend) behind a
// consistent-hash ring; the client batches one application-level
// MGet(K1..Kn) into per-shard Multi-Gets (the paper's request phase),
// issues them over the modeled EDR wire, and reassembles the responses.
//
//   $ ./multiget_kvs [--keys=20000] [--mget=24] [--requests=200]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cpu_features.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/timer.h"
#include "kvs/client.h"
#include "kvs/consistent_hash.h"
#include "kvs/loadgen.h"
#include "kvs/memc3_backend.h"
#include "kvs/server.h"
#include "kvs/simd_backend.h"

using namespace simdht;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto num_keys = static_cast<std::size_t>(flags.GetInt("keys", 20000));
  const auto mget_size = static_cast<std::size_t>(flags.GetInt("mget", 24));
  const auto requests =
      static_cast<std::size_t>(flags.GetInt("requests", 200));

  // Pick the best backend the CPU supports for shard 0; shard 1 runs the
  // MemC3 baseline so the output contrasts both in one run.
  std::unique_ptr<KvBackend> shard0;
  if (GetCpuFeatures().Supports(SimdLevel::kAvx512)) {
    shard0 = std::make_unique<SimdBackend>(SimdBackend::CuckooVerAvx512(),
                                           num_keys * 2, 256 << 20);
  } else if (GetCpuFeatures().Supports(SimdLevel::kAvx2)) {
    shard0 = std::make_unique<SimdBackend>(
        SimdBackend::BucketCuckooHorAvx2(), num_keys * 2, 256 << 20);
  } else {
    shard0 = std::make_unique<SimdBackend>(
        SimdBackend::ScalarBucketCuckoo(), num_keys * 2, 256 << 20);
  }
  auto shard1 = std::make_unique<Memc3Backend>(num_keys * 2, 256 << 20);
  KvBackend* shards[2] = {shard0.get(), shard1.get()};
  std::printf("shard 0 backend: %s\nshard 1 backend: %s\n\n",
              shards[0]->name(), shards[1]->name());

  // One channel + server per shard, over the modeled InfiniBand EDR wire.
  Channel ch0{WireModel::InfinibandEdr()};
  Channel ch1{WireModel::InfinibandEdr()};
  KvServer server0(shards[0], {&ch0});
  KvServer server1(shards[1], {&ch1});
  server0.Start();
  server1.Start();
  KvClient clients[2] = {KvClient(&ch0), KvClient(&ch1)};

  // Consistent-hash ring maps each key to its shard (request phase step 1).
  ConsistentHashRing ring;
  ring.AddServer(0);
  ring.AddServer(1);

  // Preload.
  std::vector<std::string> keys;
  keys.reserve(num_keys);
  for (std::size_t i = 0; i < num_keys; ++i) {
    keys.push_back(MakeKeyString(i, 20));
  }
  const std::string value(32, 'v');
  std::size_t per_shard[2] = {0, 0};
  for (const std::string& key : keys) {
    const std::uint32_t shard = ring.ServerFor(key);
    clients[shard].Set(key, value);
    ++per_shard[shard];
  }
  std::printf("preloaded %zu keys (%zu on shard 0, %zu on shard 1)\n\n",
              keys.size(), per_shard[0], per_shard[1]);

  // Application-level Multi-Gets: partition per shard, issue, reassemble.
  Xoshiro256 rng(3);
  LatencyRecorder latency;
  std::size_t total_found = 0;
  for (std::size_t r = 0; r < requests; ++r) {
    std::vector<std::string_view> batch;
    for (std::size_t k = 0; k < mget_size; ++k) {
      batch.push_back(keys[rng.NextBounded(keys.size())]);
    }
    Timer timer;
    auto parts = ring.PartitionKeys(batch);
    std::vector<std::string> merged(batch.size());
    std::vector<std::uint8_t> merged_found(batch.size(), 0);
    for (const auto& [shard, indices] : parts) {
      std::vector<std::string_view> shard_keys;
      for (std::size_t idx : indices) shard_keys.push_back(batch[idx]);
      std::vector<std::string> vals;
      std::vector<std::uint8_t> found;
      clients[shard].MultiGet(shard_keys, &vals, &found);
      for (std::size_t j = 0; j < indices.size(); ++j) {
        merged[indices[j]] = vals[j];
        merged_found[indices[j]] = found[j];
      }
    }
    latency.Add(timer.ElapsedNanos());
    for (std::uint8_t f : merged_found) total_found += f;
  }

  std::printf("issued %zu MGet(%zu) requests across 2 shards\n", requests,
              mget_size);
  std::printf("  found %zu / %zu keys\n", total_found,
              requests * mget_size);
  std::printf("  end-to-end latency: mean %.1f us, p50 %.1f us, p99 %.1f us\n",
              latency.mean() / 1e3, latency.Percentile(50) / 1e3,
              latency.Percentile(99) / 1e3);

  for (KvClient& client : clients) client.Shutdown();
  server0.Join();
  server1.Join();

  const PhaseStats s0 = server0.stats();
  const PhaseStats s1 = server1.stats();
  std::printf("\nserver-side lookup phase per batch: shard0 (%s) %.2f us, "
              "shard1 (%s) %.2f us\n",
              shards[0]->name(), s0.MeanLookupNs() / 1e3, shards[1]->name(),
              s1.MeanLookupNs() / 1e3);
  return 0;
}
