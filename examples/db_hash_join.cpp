// In-memory hash join probe (the Polychroniou/Ross database scenario).
//
// Builds a hash table on the smaller relation (build side), then streams
// the larger relation (probe side) through batched vertical-SIMD lookups —
// the analytical-database use the vertical vectorization approach was
// designed for (distinct probe key per SIMD lane, gathers into the build
// table). Computes a join aggregate: SUM(orders.amount) per matched region.
//
//   $ ./db_hash_join [--customers=100000] [--orders=4000000]
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/validation.h"
#include "ht/cuckoo_table.h"

using namespace simdht;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto num_customers =
      static_cast<std::size_t>(flags.GetInt("customers", 100000));
  const auto num_orders =
      static_cast<std::size_t>(flags.GetInt("orders", 4000000));

  // Build side: customer_id -> region (payload), in a 3-way cuckoo table —
  // the layout the paper found best for vertical SIMD at high load factor.
  CuckooTable32 customers(3, 1, num_customers, BucketLayout::kInterleaved);
  Xoshiro256 rng(7);
  std::vector<std::uint32_t> customer_ids;
  customer_ids.reserve(num_customers);
  while (customer_ids.size() < num_customers) {
    const auto id = static_cast<std::uint32_t>(rng.Next()) | 1;
    const auto region = static_cast<std::uint32_t>(rng.NextBounded(16));
    if (!customers.Insert(id, region)) break;
    customer_ids.push_back(id);
  }
  std::printf("build side: %zu customers in %s (LF %.2f)\n",
              customer_ids.size(), customers.spec().ToString().c_str(),
              customers.load_factor());

  // Probe side: orders = (customer_id, amount); ~10% dangling foreign keys
  // (deleted customers), like a selective join.
  std::vector<std::uint32_t> order_keys(num_orders);
  std::vector<std::uint32_t> order_amounts(num_orders);
  for (std::size_t i = 0; i < num_orders; ++i) {
    if (rng.NextDouble() < 0.9) {
      order_keys[i] = customer_ids[rng.NextBounded(customer_ids.size())];
    } else {
      order_keys[i] = static_cast<std::uint32_t>(rng.Next()) | 1;
    }
    order_amounts[i] = static_cast<std::uint32_t>(rng.NextBounded(1000));
  }

  // Probe with the scalar twin and every viable vertical design.
  std::vector<const KernelInfo*> kernels = {
      KernelRegistry::Get().Scalar(customers.spec())};
  for (const DesignChoice& c :
       ValidationEngine::Enumerate(customers.spec())) {
    kernels.push_back(c.kernel);
  }

  constexpr std::size_t kBatch = 4096;
  std::vector<std::uint32_t> regions(kBatch);
  std::vector<std::uint8_t> matched(kBatch);

  for (const KernelInfo* kernel : kernels) {
    std::uint64_t join_matches = 0;
    std::uint64_t region_sum[16] = {0};
    Timer timer;
    for (std::size_t off = 0; off < num_orders; off += kBatch) {
      const std::size_t n = std::min(kBatch, num_orders - off);
      join_matches += kernel->Lookup(
          customers.view(), ProbeBatch::Of(order_keys.data() + off,
                                           regions.data(), matched.data(), n));
      for (std::size_t i = 0; i < n; ++i) {
        if (matched[i]) {
          region_sum[regions[i] & 15] += order_amounts[off + i];
        }
      }
    }
    const double secs = timer.ElapsedSeconds();
    std::uint64_t total = 0;
    for (std::uint64_t s : region_sum) total += s;
    std::printf(
        "%-26s %7.1f M probes/s  (%lu matches, SUM(amount) = %lu)\n",
        kernel->name.c_str(), static_cast<double>(num_orders) / secs / 1e6,
        static_cast<unsigned long>(join_matches),
        static_cast<unsigned long>(total));
  }
  return 0;
}
